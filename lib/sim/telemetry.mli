(** Unified telemetry registry: typed metrics, windowed series, alert rules.

    Every subsystem registers {e probes} — closures reading a counter or a
    gauge — into a per-cell registry.  The experiment harness calls
    {!scrape} on a deterministic sim-time cadence; each scrape samples every
    probe into a fixed-capacity ring-buffered series (plus exact all-time
    aggregates), then evaluates the registered rolling-window alert rules.
    Nothing here touches the engine: a scrape is a pure function of the
    probes and simulated time, so a cell's telemetry is byte-identical at
    any [--jobs] level.

    Alert rules fire and clear with hysteresis: a rule transitions to
    {e active} only when its signal crosses the fire threshold and back to
    {e inactive} only when it crosses the (strictly separated) clear
    threshold — a signal oscillating strictly between the two thresholds
    never chatters.  Every transition is appended to the alert timeline and
    emitted as a typed {!Trace} event ([Alert_fire] / [Alert_clear] on
    {!Trace.telemetry_stream}), so alerts land in the Chrome trace.

    Exporters: OpenMetrics text exposition ({!to_openmetrics}), per-series
    CSV ({!to_csv}), alert-timeline CSV ({!alerts_csv}), and unicode
    sparklines over the retained window ({!sparkline}). *)

type t

val create : ?capacity:int -> ?trace:Trace.t -> unit -> t
(** A live registry.  [capacity] (default 720) is the per-series retained
    ring size — at the harness's 100 ms scrape cadence, 72 s of history.
    All-time aggregates (count/last/min/max/mean) are exact regardless of
    what the ring has dropped.  [trace] (default {!Trace.null}) receives
    alert fire/clear events. *)

val null : t
(** The disabled registry: {!register_gauge}, {!register_counter},
    {!add_rule} and {!scrape} are no-ops; every query reports emptiness.
    Threading [null] through a run costs one branch per call. *)

val enabled : t -> bool

(** {1 Registration}

    Registration order is the export order everywhere (JSON, OpenMetrics,
    CSV, dashboards); register deterministically.  Names must be unique. *)

type kind = Counter | Gauge

val kind_name : kind -> string
(** ["counter"] / ["gauge"]. *)

val register_gauge : t -> ?help:string -> name:string -> (unit -> float) -> unit
(** A point-in-time level (free frames, RSS, queue depth, breaker state).
    @raise Invalid_argument when [name] is already registered. *)

val register_counter :
  t -> ?help:string -> name:string -> (unit -> float) -> unit
(** A monotone running total (faults, timeouts, transitions); alert rules
    read counters through window deltas, never levels. *)

(** {1 Alert rules} *)

type direction =
  | Above  (** fire when the signal reaches [fire] from below *)
  | Below  (** fire when the signal reaches [fire] from above *)

type signal =
  | Last  (** the series' latest sample *)
  | Window_mean
  | Window_min
  | Window_max  (** aggregate of the last [window] retained samples *)
  | Window_rate
      (** newest minus oldest sample over the window: a counter's increase
          across the last [window] scrapes *)
  | Window_ratio of string
      (** this series' window delta divided by the named series' window
          delta (0 when the denominator did not move): e.g. SLO-missed
          over recorded — a burn rate *)

val add_rule :
  t ->
  name:string ->
  series:string ->
  ?window:int ->
  signal:signal ->
  direction:direction ->
  fire:float ->
  clear:float ->
  unit ->
  unit
(** [window] (default 1) counts scrapes and must not exceed the ring
    capacity.  Hysteresis demands strict threshold separation:
    [clear < fire] for [Above], [clear > fire] for [Below].
    @raise Invalid_argument on an unknown series (either side of a
    [Window_ratio]), a bad window, or unseparated thresholds. *)

(** {1 Scraping} *)

val scrape : t -> time:Time_ns.t -> unit
(** Sample every probe, then evaluate every rule, in registration order.
    Scrape times must be nondecreasing.
    @raise Invalid_argument when time goes backwards. *)

val scrapes : t -> int

(** {1 Queries} *)

type series_summary = {
  ts_name : string;
  ts_kind : kind;
  ts_samples : int;  (** all-time sample count (not just retained) *)
  ts_last : float;
  ts_min : float;
  ts_max : float;
  ts_mean : float;  (** all-time aggregates; 0 everywhere when empty *)
}

type alert = {
  al_time : Time_ns.t;
  al_rule : string;
  al_fired : bool;  (** [true] = fire, [false] = clear *)
  al_value : float;  (** the signal value at the transition *)
}

val series_names : t -> string list
val summaries : t -> series_summary list
val summary_of : t -> string -> series_summary option

val window : t -> string -> (Time_ns.t * float) list
(** The retained ring of a series, oldest first; [[]] for unknown names. *)

val last_value : t -> string -> float option

val alerts : t -> alert list
(** The full fire/clear timeline, chronological. *)

val active_rules : t -> string list
(** Rules currently in the fired state, registration order. *)

(** {1 Rendering and export} *)

val sparkline_of : ?width:int -> (Time_ns.t * float) list -> string
(** Resample to [width] buckets (default 60) and render with the eight
    one-eighth block glyphs, averaging the samples landing in each bucket
    and carrying the previous level across empty ones; an empty input
    renders as "(no samples)". *)

val sparkline : ?width:int -> t -> string -> string
(** {!sparkline_of} over the series' retained window. *)

val pp_summary : Format.formatter -> series_summary -> unit
(** One line: name, min/mean/max/last. *)

val pp : Format.formatter -> t -> unit
(** Every series' summary plus its sparkline, then the alert timeline. *)

val to_openmetrics : t -> string
(** OpenMetrics text exposition: [# TYPE]/[# HELP] metadata per metric,
    counters suffixed [_total], rule states as
    [memhog_alert_active{rule="..."}] gauges, terminated by [# EOF]. *)

val to_csv : t -> string
(** ["series,time_ns,value"] rows over every retained window, registration
    order then time order. *)

val alerts_csv : t -> string
(** ["time_ns,rule,event,value"] rows over the alert timeline. *)
