open Effect
open Effect.Deep

type proc_state = Ready | Blocked | Finished | Crashed of exn

type proc = {
  pid : int;
  name : string;
  account : Account.t;
  mutable state : proc_state;
  mutable wakeups : int;
}

type waker = unit -> unit

(* The event queue stores a flat variant instead of a closure per event:
   a delay/suspend wake is just the process and its pending continuation
   (one 3-word block), not a fresh closure capturing engine, process and
   continuation.  Thunks remain for the rare spawn / wake_after events. *)
type event =
  | Ev_thunk of (unit -> unit)
  | Ev_resume of proc * (unit, unit) continuation

type t = {
  events : event Heap.t;
  mutable now : int;
  mutable seq : int;
  mutable next_pid : int;
  mutable stop_requested : bool;
  mutable live : int;
  max_time : int;
  mutable crash_list : (string * exn) list;
  mutable executed : int;
  mutable current : proc;
      (* the process whose fiber is executing (dummy between fibers) *)
  (* Scratch slots for passing effect payloads without allocating an
     effect-constructor block per perform: [delay]/[suspend] store their
     arguments here immediately before performing the matching constant
     effect, and the handler (which runs synchronously on the same domain)
     reads them back.  Nothing can interleave between the store and the
     perform. *)
  mutable sc_cat : Account.category;
  mutable sc_ns : int;
  mutable sc_register : waker -> unit;
}

exception Not_in_simulation
exception Stopped

(* Payload-free effects: arguments travel through the scratch slots above.
   The handler closures installed by [start_fiber] know both the engine and
   the current process, so the effects carry no engine reference either. *)
type _ Effect.t += E_delay : unit Effect.t
type _ Effect.t += E_suspend : unit Effect.t

let dummy_fun () = ()
let null_register (_ : waker) = ()

let dummy_proc =
  {
    pid = -1;
    name = "<no process>";
    account = Account.create ();
    state = Finished;
    wakeups = 0;
  }

let create ?(max_time = Time_ns.sec 10_000_000) () =
  {
    events = Heap.create ~dummy:(Ev_thunk dummy_fun) ();
    now = 0;
    seq = 0;
    next_pid = 0;
    stop_requested = false;
    live = 0;
    max_time;
    crash_list = [];
    executed = 0;
    current = dummy_proc;
    sc_cat = Account.User;
    sc_ns = 0;
    sc_register = null_register;
  }

(* The engine currently executing on this domain, so that [now]/[self]/
   [delay]/... reach it without threading a handle through every call:
   [run] installs the engine in the slot and restores the previous value on
   exit (nested [run]s on one domain save/restore correctly). *)
let dls_current : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let[@inline] cur () =
  match !(Domain.DLS.get dls_current) with
  | Some t -> t
  | None -> raise Not_in_simulation

let now_of t = t.now
let events_executed t = t.executed
let stopped t = t.stop_requested
let crashes t = List.rev t.crash_list
let live_count t = t.live

let schedule t time ev =
  if time < t.now then invalid_arg "Engine.schedule: time in the past";
  t.seq <- t.seq + 1;
  Heap.add t.events ~key:time ~seq:t.seq ev

let rec start_fiber t proc f =
  proc.state <- Ready;
  t.current <- proc;
  let retc () =
    proc.state <- Finished;
    t.live <- t.live - 1
  in
  let exnc e =
    (match e with
    | Stopped ->
        (* A process observed the stop request and unwound; not a crash. *)
        proc.state <- Finished
    | _ ->
        proc.state <- Crashed e;
        t.crash_list <- (proc.name, e) :: t.crash_list);
    t.live <- t.live - 1
  in
  (* Handler closures are allocated once per fiber, not once per performed
     effect: the [effc] branches below return these preexisting options. *)
  let h_delay =
    Some
      (fun (k : (unit, unit) continuation) ->
        let d = t.sc_ns in
        if d < 0 then discontinue k (Invalid_argument "Engine.delay: negative")
        else begin
          Account.add proc.account t.sc_cat d;
          proc.state <- Blocked;
          schedule t (t.now + d) (Ev_resume (proc, k))
        end)
  in
  let h_suspend =
    Some
      (fun (k : (unit, unit) continuation) ->
        let register = t.sc_register in
        t.sc_register <- null_register;
        proc.state <- Blocked;
        let fired = ref false in
        let waker () =
          if not !fired then begin
            fired := true;
            proc.wakeups <- proc.wakeups + 1;
            schedule t t.now (Ev_resume (proc, k))
          end
        in
        register waker)
  in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    function
    | E_delay -> h_delay
    | E_suspend -> h_suspend
    | _ -> None
  in
  match_with f () { retc; exnc; effc }

and spawn : t -> name:string -> (unit -> unit) -> proc =
 fun t ~name f ->
  let proc =
    { pid = t.next_pid; name; account = Account.create (); state = Ready; wakeups = 0 }
  in
  t.next_pid <- t.next_pid + 1;
  t.live <- t.live + 1;
  schedule t t.now (Ev_thunk (fun () -> start_fiber t proc f));
  proc

let wake_after t d waker =
  if d < 0 then invalid_arg "Engine.wake_after: negative";
  schedule t (t.now + d) (Ev_thunk waker)

let run t =
  let slot = Domain.DLS.get dls_current in
  let saved = !slot in
  slot := Some t;
  Fun.protect
    ~finally:(fun () -> slot := saved)
    (fun () ->
      let events = t.events in
      let rec loop () =
        if t.stop_requested || Heap.is_empty events then ()
        else begin
          let time = Heap.min_key events in
          if time > t.max_time then t.stop_requested <- true
          else begin
            t.now <- time;
            t.executed <- t.executed + 1;
            (match Heap.pop events with
            | Ev_thunk f ->
                t.current <- dummy_proc;
                f ()
            | Ev_resume (proc, k) ->
                t.current <- proc;
                if t.stop_requested then discontinue k Stopped
                else begin
                  proc.state <- Ready;
                  continue k ()
                end);
            loop ()
          end
        end
      in
      loop ())

(* Process-side operations.  [now]/[self]/[stop]/[spawn_child] read the
   engine straight from domain-local storage — no effect round trip, no
   handler dispatch.  [delay] and [suspend] must capture the continuation,
   so they still perform (constant, payload-free) effects. *)

let now () = (cur ()).now

let self () =
  let p = (cur ()).current in
  if p == dummy_proc then raise Not_in_simulation else p

let delay ~cat d =
  let t = cur () in
  t.sc_cat <- cat;
  t.sc_ns <- d;
  try perform E_delay with Effect.Unhandled _ -> raise Not_in_simulation

let suspend register =
  let t = cur () in
  t.sc_register <- register;
  try perform E_suspend with Effect.Unhandled _ -> raise Not_in_simulation

let spawn_child ~name f = spawn (cur ()) ~name f
let stop () = (cur ()).stop_requested <- true
