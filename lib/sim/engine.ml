open Effect
open Effect.Deep

type proc_state = Ready | Blocked | Finished | Crashed of exn

type proc = {
  pid : int;
  name : string;
  account : Account.t;
  mutable state : proc_state;
  mutable wakeups : int;
}

type t = {
  events : (unit -> unit) Heap.t;
  mutable now : int;
  mutable seq : int;
  mutable next_pid : int;
  mutable stop_requested : bool;
  mutable live : int;
  max_time : int;
  mutable crash_list : (string * exn) list;
}

exception Not_in_simulation
exception Stopped

type waker = unit -> unit

(* Effects performed by process code.  The handler closure installed by
   [start_fiber] knows both the engine and the current process, so the
   effects carry no engine reference. *)
type _ Effect.t += E_now : int Effect.t
type _ Effect.t += E_self : proc Effect.t
type _ Effect.t += E_delay : Account.category * int -> unit Effect.t
type _ Effect.t += E_suspend : (waker -> unit) -> unit Effect.t
type _ Effect.t += E_spawn : string * (unit -> unit) -> proc Effect.t
type _ Effect.t += E_stop : unit Effect.t

let create ?(max_time = Time_ns.sec 10_000_000) () =
  {
    events = Heap.create ();
    now = 0;
    seq = 0;
    next_pid = 0;
    stop_requested = false;
    live = 0;
    max_time;
    crash_list = [];
  }

let now_of t = t.now
let stopped t = t.stop_requested
let crashes t = List.rev t.crash_list
let live_count t = t.live

let schedule t time thunk =
  if time < t.now then invalid_arg "Engine.schedule: time in the past";
  t.seq <- t.seq + 1;
  Heap.add t.events ~key:time ~seq:t.seq thunk

let rec start_fiber t proc f =
  proc.state <- Ready;
  let retc () =
    proc.state <- Finished;
    t.live <- t.live - 1
  in
  let exnc e =
    (match e with
    | Stopped ->
        (* A process observed the stop request and unwound; not a crash. *)
        proc.state <- Finished
    | _ ->
        proc.state <- Crashed e;
        t.crash_list <- (proc.name, e) :: t.crash_list);
    t.live <- t.live - 1
  in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    function
    | E_now -> Some (fun k -> continue k t.now)
    | E_self -> Some (fun k -> continue k proc)
    | E_delay (cat, d) ->
        Some
          (fun k ->
            if d < 0 then discontinue k (Invalid_argument "Engine.delay: negative")
            else begin
              Account.add proc.account cat d;
              proc.state <- Blocked;
              schedule t (t.now + d) (fun () ->
                  if t.stop_requested then discontinue k Stopped
                  else begin
                    proc.state <- Ready;
                    continue k ()
                  end)
            end)
    | E_suspend register ->
        Some
          (fun k ->
            proc.state <- Blocked;
            let fired = ref false in
            let waker () =
              if not !fired then begin
                fired := true;
                proc.wakeups <- proc.wakeups + 1;
                schedule t t.now (fun () ->
                    if t.stop_requested then discontinue k Stopped
                    else begin
                      proc.state <- Ready;
                      continue k ()
                    end)
              end
            in
            register waker)
    | E_spawn (name, f) -> Some (fun k -> continue k (spawn t ~name f))
    | E_stop ->
        Some
          (fun k ->
            t.stop_requested <- true;
            continue k ())
    | _ -> None
  in
  match_with f () { retc; exnc; effc }

and spawn : t -> name:string -> (unit -> unit) -> proc =
 fun t ~name f ->
  let proc =
    { pid = t.next_pid; name; account = Account.create (); state = Ready; wakeups = 0 }
  in
  t.next_pid <- t.next_pid + 1;
  t.live <- t.live + 1;
  schedule t t.now (fun () -> start_fiber t proc f);
  proc

let wake_after t d waker =
  if d < 0 then invalid_arg "Engine.wake_after: negative";
  schedule t (t.now + d) (fun () -> waker ())

let run t =
  let rec loop () =
    if t.stop_requested then ()
    else
      match Heap.pop_min t.events with
      | None -> ()
      | Some (time, _, thunk) ->
          if time > t.max_time then t.stop_requested <- true
          else begin
            t.now <- time;
            thunk ();
            loop ()
          end
  in
  loop ()

(* Process-side operations. *)

let wrap_unhandled f =
  try f () with Effect.Unhandled _ -> raise Not_in_simulation

let now () = wrap_unhandled (fun () -> perform E_now)
let self () = wrap_unhandled (fun () -> perform E_self)
let delay ~cat d = wrap_unhandled (fun () -> perform (E_delay (cat, d)))
let suspend register = wrap_unhandled (fun () -> perform (E_suspend register))
let spawn_child ~name f = wrap_unhandled (fun () -> perform (E_spawn (name, f)))
let stop () = wrap_unhandled (fun () -> perform E_stop)
