(** Per-page lifecycle ledger with causal attribution to directive sites.

    The ledger consumes the same typed events {!Trace} records, fed directly
    at the emit point (never by replaying the ring, so ring overflow cannot
    truncate it).  It tracks a lifecycle state machine per (owner pid, vpn) —
    prefetch-sent → in-flight → resident(prefetched) → referenced →
    release-sent → freed → rescued / refaulted / reused — and charges every
    transition to the static directive site ({!Memhog_compiler.Pir.directive}
    [.d_tag]) that caused it.

    On top of the raw lifecycle it derives the paper's wasted-work taxonomy:
    - {e useless prefetch}: fetched, never referenced;
    - {e late prefetch}: the demand fault arrived while the prefetch was
      still pending or in flight;
    - {e too-early release}: released then touched again — cheap when the
      page was rescued off the free list, expensive when it hard-refaulted;
    - {e unnecessary release}: freed but never reclaimed under pressure
      (the frame was never reused and the page never touched again).

    Driven only by simulated-time events inside one experiment cell, with
    sorted summary tables, so the output is byte-identical at any [--jobs]. *)

type t

val create : unit -> t

val null : t
(** A permanently disabled ledger; [observe] on it is a no-op. *)

val enabled : t -> bool

val refaults : t -> int
(** Running count of too-early releases that hard-refaulted — the same
    total {!summarize} reports as [ls_early_refaulted], but O(1): cheap
    enough for a telemetry probe to read every scrape. *)

val early_rescues : t -> int
(** Running count of too-early releases rescued from the free list
    ([ls_early_rescued]), also O(1). *)

val observe : t -> time:Time_ns.t -> stream:int -> Trace.event -> unit
(** Feed one event.  [stream] follows the {!Trace.emit} convention: the
    acting process's pid for application-stream events; daemon-side events
    carry the owning pid in the event payload.  Total: never raises, for any
    event interleaving (see {!invariants_ok}). *)

(** One row of the per-directive-site efficacy table. *)
type site_row = {
  sr_site : int;  (** directive tag; {!Trace.no_site} = unattributed *)
  sr_pf_sent : int;  (** prefetch intents accepted by the run-time layer *)
  sr_pf_issued : int;  (** asynchronous fetches the OS started *)
  sr_pf_dropped : int;  (** dropped: no free frame / queue full *)
  sr_pf_raced : int;  (** page already resident when the OS looked *)
  sr_pf_done : int;  (** fetches (or free-list rescues) that completed *)
  sr_pf_referenced : int;  (** prefetched pages later touched *)
  sr_pf_useless : int;  (** prefetched pages never touched *)
  sr_pf_late : int;  (** demand fault beat the prefetch *)
  sr_pf_saved_ns : int;  (** I/O ns hidden by referenced prefetches *)
  sr_rel_hints : int;  (** release hints from the application *)
  sr_rel_filtered : int;  (** dropped by the one-behind/bitmap filters *)
  sr_rel_buffered : int;  (** parked in the release buffer *)
  sr_rel_stale : int;  (** invalidated in the buffer before draining *)
  sr_rel_sent : int;  (** forwarded to the OS *)
  sr_rel_skipped : int;  (** OS saw a re-reference and kept the page *)
  sr_rel_freed : int;  (** freed by the releaser *)
  sr_rel_rescued : int;  (** freed page rescued off the free list *)
  sr_rel_refaulted : int;  (** freed page hard-refaulted later *)
  sr_rel_reused : int;  (** freed frame reused by another allocation *)
  sr_rel_unreclaimed : int;  (** freed but never reused nor re-touched *)
  sr_priority_mean : float;  (** mean Eq. 2 priority of this site's hints *)
  sr_refault_pct : float;  (** (rescued + refaulted) / freed, percent *)
}

type summary = {
  ls_sites : site_row list;  (** ascending site id; unattributed row first *)
  ls_pages_tracked : int;
  ls_useless_prefetches : int;
  ls_late_prefetches : int;
  ls_early_rescued : int;
  ls_early_refaulted : int;
  ls_useful_releases : int;
  ls_unnecessary_releases : int;
  ls_hard_faults : int;  (** reconciles with Vm_stats hard_faults *)
  ls_soft_faults : int;
  ls_validation_faults : int;
  ls_zero_fills : int;
  ls_rescues : int;  (** reconciles with rescued_daemon + rescued_releaser *)
  ls_prefetches_issued : int;
  ls_prefetches_dropped : int;  (** reconciles with prefetches_dropped *)
  ls_releases_freed : int;
  ls_releases_skipped : int;
  ls_tier_demotions : int;  (** pages placed in a fast tier on release *)
  ls_tier_fetches : int;  (** faults/prefetches served from a fast tier *)
  ls_tier_failovers : int;  (** demotions redirected off an unhealthy tier *)
  ls_tier_rescues : int;  (** dead-tier reads served from the failover copy *)
}

val summarize : t -> summary
(** Close out the run: pages still prefetched-unreferenced become useless
    prefetches, pages still on the free list become unnecessary releases.
    Pure — never mutates the ledger, safe to call repeatedly. *)

val empty_summary : summary
(** What [summarize null] returns: all zeros, no site rows. *)

val invariants_ok : summary -> bool
(** Structural legality of a summary: counters non-negative, per-site sums
    reconcile with the global tallies, reused/unreclaimed never exceed
    freed.  Holds for {e any} event interleaving fed to [observe]. *)
