(** Per-request critical-path tracing with blame attribution.

    A [Reqtrace.t] records, for every completed server request, an {e
    additive} decomposition of its response time into five top-level
    components — queue wait, index-page fault stall, value-page fault
    stall, CPU-semaphore wait, compute — that sum {e exactly} to the
    recorded response time.  The additivity is structural, not a
    convention the caller must honour: the record keeps a running
    boundary mark, every [note_*] call charges [now - mark] to its
    component and advances the mark, and [finish] folds whatever is left
    into compute.  Sub-components measured inside the stalls (demand
    disk service, time queued behind background I/O before a demand
    bypass, in-transit waits on someone else's I/O, prefetch slack) are
    attributed to the request via the calling fiber's pid and recorded as
    informational children — they explain the stalls, they do not change
    the sum.

    Records are preallocated and reservoir-sampled (Algorithm R with a
    private seeded stream) above [cap], so hot runs stay
    allocation-light; the whole-population per-component histograms are
    recorded at every commit, so blame shares are exact even when the
    sampled span set is not.  Everything is deterministic per simulation
    cell and therefore byte-identical at any [--jobs].

    Like {!Trace} and {!Ledger}, a [null] reqtrace makes every entry
    point a single branch. *)

type touch_kind = Index | Value

type touch_outcome =
  | Hit  (** page resident; no fault of any kind *)
  | Soft  (** reclaimed / validated / rescued without a disk read here *)
  | Hard  (** demand disk read on this request's critical path *)

(** One request's record.  All times are simulated ns; the five
    [sp_queue..sp_compute] components telescope to [sp_response]
    exactly.  Treat as read-only outside this module: the records are
    reused storage owned by the reqtrace. *)
type span = {
  mutable sp_id : int;  (** commit ordinal (0-based); -1 before commit *)
  mutable sp_key : int;
  mutable sp_arrival : Time_ns.t;
  mutable sp_response : Time_ns.t;
  (* additive components *)
  mutable sp_queue : Time_ns.t;
  mutable sp_index : Time_ns.t;
  mutable sp_value : Time_ns.t;
  mutable sp_cpu : Time_ns.t;
  mutable sp_compute : Time_ns.t;
  (* informational sub-components (inside the stalls above) *)
  mutable sp_disk_queue : Time_ns.t;
      (** demand time spent waiting for the arm (behind background I/O
          when [sp_bypasses] > 0) *)
  mutable sp_disk_service : Time_ns.t;  (** demand positioning+transfer *)
  mutable sp_transit : Time_ns.t;
      (** waits on pages already in transit under someone else's I/O *)
  mutable sp_bypasses : int;
  mutable sp_pf_hidden : int;
      (** touches whose urgent prefetch (or residency) hid the disk *)
  mutable sp_pf_lost : int;  (** touches whose urgent prefetch lost the race *)
  mutable sp_pf_slack : Time_ns.t;
      (** total issue-to-touch gap minus observed I/O span, clamped >= 0 *)
  mutable sp_mark : Time_ns.t;  (** internal: last component boundary *)
  mutable sp_nchild : int;
  sp_child_kind : int array;
  sp_child_start : Time_ns.t array;
  sp_child_dur : Time_ns.t array;
  mutable sp_nslack : int;
  sp_slack : Time_ns.t array;
}

val children : span -> (string * Time_ns.t * Time_ns.t) list
(** Recorded child intervals as [(kind, start, dur)], oldest first.
    Kinds: ["disk_queue"], ["disk_io"], ["transit"].  At most
    {!max_children} are kept per span; later ones are dropped. *)

val max_children : int

type t

val null : t
(** Permanently disabled; every entry point is a no-op. *)

val create : ?cap:int -> seed:int -> unit -> t
(** [cap] bounds the sampled-span reservoir (default 4096).  [seed]
    drives only the reservoir's replacement draws. *)

val enabled : t -> bool

(** {1 Request lifecycle (driven by the serving fiber)} *)

val start : t -> pid:int -> key:int -> arrival:Time_ns.t -> now:Time_ns.t -> unit
(** Begin a span on fiber [pid]; [now - arrival] is charged to queue
    wait.  A span already active on [pid] is discarded. *)

val note_touch :
  t ->
  pid:int ->
  kind:touch_kind ->
  vpn:int ->
  outcome:touch_outcome ->
  now:Time_ns.t ->
  unit
(** Charge [now - mark] to the index or value stall and settle the
    urgent-prefetch race for [vpn] (hidden vs lost, slack from the last
    observed [Prefetch_done] I/O span). *)

val note_cpu_acquired : t -> pid:int -> now:Time_ns.t -> unit
(** Charge [now - mark] to CPU-semaphore wait. *)

val finish : t -> pid:int -> commit:bool -> now:Time_ns.t -> unit
(** Charge [now - mark] to compute, close the span and, when [commit]
    (the response was recorded, i.e. post-warmup), fold it into the
    population histograms and offer it to the reservoir. *)

(** {1 Attribution hooks (called from the disk and VM layers)} *)

val note_disk_queue :
  t -> pid:int -> start:Time_ns.t -> ns:Time_ns.t -> bypassed:bool -> unit
(** Demand request on fiber [pid] waited [ns] for the disk arm;
    [bypassed] when it overtook queued background work. *)

val note_disk_service : t -> pid:int -> start:Time_ns.t -> ns:Time_ns.t -> unit
(** Demand positioning+transfer span on fiber [pid]. *)

val note_transit : t -> pid:int -> start:Time_ns.t -> ns:Time_ns.t -> unit
(** Fiber [pid] waited [ns] for a page already in transit under
    someone else's I/O. *)

val note_prefetch_issued : t -> vpn:int -> now:Time_ns.t -> unit
(** An urgent prefetch for [vpn] was requested at [now]; the next touch
    of [vpn] settles the race. *)

val observe : t -> time:Time_ns.t -> stream:int -> Trace.event -> unit
(** Trace-event observer (hooked at the OS emit point, like
    {!Ledger.observe}): learns each prefetch's I/O span from
    [Prefetch_done]. *)

(** {1 Aggregation} *)

val committed : t -> int
(** Requests committed (recorded responses). *)

val sampled : t -> int
(** Spans currently held in the reservoir. *)

val iter_sampled : t -> (span -> unit) -> unit
(** Iterate the reservoir in slot order (deterministic). *)

val slowest : t -> span option
(** The slowest committed request (first one on ties), kept outside the
    reservoir so it always survives sampling. *)

(** Per-percentile-band component sums over the sampled spans. *)
type band = {
  bd_label : string;  (** ["body"], ["tail"], ["deep"] *)
  bd_count : int;
  bd_queue : Time_ns.t;
  bd_index : Time_ns.t;
  bd_value : Time_ns.t;
  bd_cpu : Time_ns.t;
  bd_compute : Time_ns.t;
  bd_response : Time_ns.t;
}

type summary = {
  su_committed : int;
  su_sampled : int;
  su_cap : int;
  su_p50 : Time_ns.t;  (** response percentiles over {e all} commits *)
  su_p99 : Time_ns.t;
  su_p999 : Time_ns.t;
  su_bands : band list;
      (** body (< p99), tail (p99 <= r < p999), deep (>= p999) *)
  su_response : Histogram.t;  (** whole-population, one entry per commit *)
  su_queue : Histogram.t;
  su_index : Histogram.t;
  su_value : Histogram.t;
  su_cpu : Histogram.t;
  su_compute : Histogram.t;
  su_pf_slack : Histogram.t;  (** one entry per hidden prefetch *)
  su_pf_hidden : int;
  su_pf_lost : int;
  su_bypasses : int;
  su_disk_queue : Time_ns.t;  (** totals over committed requests *)
  su_disk_service : Time_ns.t;
  su_transit : Time_ns.t;
}

val summarize : t -> summary
(** Deterministic: percentile thresholds come from the whole-population
    response histogram; bands are folded over the reservoir in slot
    order. *)
