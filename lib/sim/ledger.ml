(* Per-page lifecycle ledger with causal attribution to directive sites.

   The ledger consumes the same typed events the Trace ring sees, but at the
   emit point rather than by replaying the ring, so ring capacity and
   overflow never truncate it.  For every (owner pid, vpn) it tracks a small
   lifecycle state machine and charges each transition to the static
   directive site (Pir.d_tag) that caused it; the residue is the wasted-work
   taxonomy the paper derives by hand.

   Determinism: the ledger is driven purely by simulated-time events inside
   one experiment cell, performs no Engine interaction, and its summary
   sorts all tables — so the output is byte-identical at any --jobs. *)

type pstate =
  | Not_resident
  | Pf_sent of int  (* site: intent accepted by the run-time layer *)
  | Pf_inflight of int  (* site: OS started the asynchronous fetch *)
  | Prefetched of { site : int; ns : int }
      (* resident via a completed prefetch, not yet referenced *)
  | Resident
  | Released of int  (* site: release forwarded to the OS, not yet freed *)
  | Freed of int  (* site: on the free list via the releaser *)
  | Freed_daemon  (* on the free list via a daemon steal *)
  | Gone of int  (* site: freed frame was reused; contents only on swap *)

type page = { mutable st : pstate }

(* Int-specialized hash tables for the two hot lookups ([page] on every
   fault/touch event, [site_stats] on every charge).  The generic functorial
   interface with an int key avoids the polymorphic-hash dispatch and the
   (pid, vpn) tuple allocation per lookup. *)
module Itbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

(* (owner pid, vpn) packed into one immediate int.  40 bits of vpn is
   orders of magnitude beyond any simulated address space; pids are small
   non-negative stream ids. *)
let page_key ~pid ~vpn = (pid lsl 40) lor vpn

type site_stats = {
  mutable pf_sent : int;
  mutable pf_issued : int;
  mutable pf_dropped : int;
  mutable pf_raced : int;
  mutable pf_done : int;
  mutable pf_referenced : int;
  mutable pf_useless : int;
  mutable pf_late : int;
  mutable pf_saved_ns : int;
  mutable rel_hints : int;
  mutable rel_filtered : int;
  mutable rel_buffered : int;
  mutable rel_stale : int;
  mutable rel_sent : int;
  mutable rel_skipped : int;
  mutable rel_freed : int;
  mutable rel_rescued : int;
  mutable rel_refaulted : int;
  mutable rel_reused : int;
  mutable rel_unreclaimed : int;
  mutable priority_sum : int;
  mutable priority_n : int;
}

type t = {
  l_enabled : bool;
  pages : page Itbl.t;  (* [page_key] -> state *)
  sites : site_stats Itbl.t;
  (* Global tallies, used to reconcile against Vm_stats. *)
  mutable hard_faults : int;
  mutable soft_faults : int;
  mutable validation_faults : int;
  mutable zero_fills : int;
  mutable rescues : int;
  mutable prefetches_issued : int;
  mutable prefetches_dropped : int;
  mutable releases_freed : int;
  mutable releases_skipped : int;
  (* Taxonomy totals (also derivable from the site table; kept as running
     counters so the summary is O(sites)). *)
  mutable useless_prefetches : int;
  mutable late_prefetches : int;
  mutable early_rescued : int;
  mutable early_refaulted : int;
  mutable useful_releases : int;
  (* Cross-tier transitions (tiered backing store; zero without --tiers). *)
  mutable tier_demotions : int;
  mutable tier_fetches : int;
  mutable tier_failovers : int;
  mutable tier_rescues : int;
}

let create () =
  {
    l_enabled = true;
    pages = Itbl.create 4096;
    sites = Itbl.create 64;
    hard_faults = 0;
    soft_faults = 0;
    validation_faults = 0;
    zero_fills = 0;
    rescues = 0;
    prefetches_issued = 0;
    prefetches_dropped = 0;
    releases_freed = 0;
    releases_skipped = 0;
    useless_prefetches = 0;
    late_prefetches = 0;
    early_rescued = 0;
    early_refaulted = 0;
    useful_releases = 0;
    tier_demotions = 0;
    tier_fetches = 0;
    tier_failovers = 0;
    tier_rescues = 0;
  }

let null =
  {
    l_enabled = false;
    pages = Itbl.create 1;
    sites = Itbl.create 1;
    hard_faults = 0;
    soft_faults = 0;
    validation_faults = 0;
    zero_fills = 0;
    rescues = 0;
    prefetches_issued = 0;
    prefetches_dropped = 0;
    releases_freed = 0;
    releases_skipped = 0;
    useless_prefetches = 0;
    late_prefetches = 0;
    early_rescued = 0;
    early_refaulted = 0;
    useful_releases = 0;
    tier_demotions = 0;
    tier_fetches = 0;
    tier_failovers = 0;
    tier_rescues = 0;
  }

let enabled t = t.l_enabled
let refaults t = t.early_refaulted
let early_rescues t = t.early_rescued

let site_stats t site =
  match Itbl.find_opt t.sites site with
  | Some s -> s
  | None ->
      let s =
        {
          pf_sent = 0;
          pf_issued = 0;
          pf_dropped = 0;
          pf_raced = 0;
          pf_done = 0;
          pf_referenced = 0;
          pf_useless = 0;
          pf_late = 0;
          pf_saved_ns = 0;
          rel_hints = 0;
          rel_filtered = 0;
          rel_buffered = 0;
          rel_stale = 0;
          rel_sent = 0;
          rel_skipped = 0;
          rel_freed = 0;
          rel_rescued = 0;
          rel_refaulted = 0;
          rel_reused = 0;
          rel_unreclaimed = 0;
          priority_sum = 0;
          priority_n = 0;
        }
      in
      Itbl.add t.sites site s;
      s

let page t ~pid ~vpn =
  let key = page_key ~pid ~vpn in
  match Itbl.find_opt t.pages key with
  | Some p -> p
  | None ->
      let p = { st = Not_resident } in
      Itbl.add t.pages key p;
      p

(* A prefetched-but-unreferenced page leaving residency (or being released)
   makes its prefetch useless; charge the prefetching site. *)
let charge_useless t site =
  (site_stats t site).pf_useless <- (site_stats t site).pf_useless + 1;
  t.useless_prefetches <- t.useless_prefetches + 1

(* A reference arriving at a page a directive released earlier: cheap if the
   page is still on the free list (rescue), expensive if the frame is gone
   (hard refault).  Charge the releasing site. *)
let charge_rescued t site =
  (site_stats t site).rel_rescued <- (site_stats t site).rel_rescued + 1;
  t.early_rescued <- t.early_rescued + 1

let charge_refaulted t site =
  (site_stats t site).rel_refaulted <- (site_stats t site).rel_refaulted + 1;
  t.early_refaulted <- t.early_refaulted + 1

let observe t ~time:_ ~stream ev =
  if t.l_enabled then
    match (ev : Trace.event) with
    (* ---- demand faults (stream = faulting pid) ---- *)
    | Hard_fault { vpn } ->
        t.hard_faults <- t.hard_faults + 1;
        let p = page t ~pid:stream ~vpn in
        (match p.st with
        | Pf_sent site | Pf_inflight site ->
            let s = site_stats t site in
            s.pf_late <- s.pf_late + 1;
            t.late_prefetches <- t.late_prefetches + 1
        | Released site | Freed site | Gone site ->
            if site <> Trace.no_site then charge_refaulted t site
        | Prefetched { site; _ } -> charge_useless t site
        | Not_resident | Resident | Freed_daemon -> ());
        p.st <- Resident
    | Soft_fault { vpn } ->
        t.soft_faults <- t.soft_faults + 1;
        let p = page t ~pid:stream ~vpn in
        (match p.st with
        | Prefetched { site; ns } ->
            (* invalidated before validation; the touch still profits *)
            let s = site_stats t site in
            s.pf_referenced <- s.pf_referenced + 1;
            s.pf_saved_ns <- s.pf_saved_ns + ns
        | _ -> ());
        p.st <- Resident
    | Validation_fault { vpn } ->
        t.validation_faults <- t.validation_faults + 1;
        let p = page t ~pid:stream ~vpn in
        (match p.st with
        | Prefetched { site; ns } ->
            let s = site_stats t site in
            s.pf_referenced <- s.pf_referenced + 1;
            s.pf_saved_ns <- s.pf_saved_ns + ns
        | _ -> ());
        p.st <- Resident
    | Zero_fill { vpn } ->
        t.zero_fills <- t.zero_fills + 1;
        (page t ~pid:stream ~vpn).st <- Resident
    | Rescue { vpn; for_prefetch; site } ->
        t.rescues <- t.rescues + 1;
        let p = page t ~pid:stream ~vpn in
        (* [site] is the site whose release freed the frame (no_site for a
           daemon steal); the ledger's own state agrees when the rescue is
           attributable. *)
        (match p.st with
        | Freed s | Released s | Gone s ->
            let s = if site <> Trace.no_site then site else s in
            if s <> Trace.no_site then charge_rescued t s
        | _ -> if site <> Trace.no_site then charge_rescued t site);
        (* A demand rescue leaves the page resident; a prefetch rescue will
           be followed by Prefetch_done, which takes the state over. *)
        if not for_prefetch then p.st <- Resident
    (* ---- prefetch pipeline (stream = prefetching pid) ---- *)
    | Rt_prefetch_sent { vpn; site } ->
        (site_stats t site).pf_sent <- (site_stats t site).pf_sent + 1;
        let p = page t ~pid:stream ~vpn in
        (match p.st with
        | Not_resident | Freed _ | Freed_daemon | Gone _ | Pf_sent _
        | Pf_inflight _ | Released _ ->
            p.st <- Pf_sent site
        | Resident | Prefetched _ -> ())
    | Prefetch_issued { vpn; site } ->
        t.prefetches_issued <- t.prefetches_issued + 1;
        (site_stats t site).pf_issued <- (site_stats t site).pf_issued + 1;
        (page t ~pid:stream ~vpn).st <- Pf_inflight site
    | Prefetch_dropped { vpn; site } ->
        t.prefetches_dropped <- t.prefetches_dropped + 1;
        (site_stats t site).pf_dropped <- (site_stats t site).pf_dropped + 1;
        let p = page t ~pid:stream ~vpn in
        (match p.st with Pf_sent _ | Pf_inflight _ -> p.st <- Not_resident | _ -> ())
    | Prefetch_raced { vpn; site } ->
        (site_stats t site).pf_raced <- (site_stats t site).pf_raced + 1;
        let p = page t ~pid:stream ~vpn in
        (match p.st with Pf_sent _ | Pf_inflight _ -> p.st <- Resident | _ -> ())
    | Prefetch_done { vpn; site; ns } ->
        (site_stats t site).pf_done <- (site_stats t site).pf_done + 1;
        (page t ~pid:stream ~vpn).st <- Prefetched { site; ns }
    (* ---- release pipeline ---- *)
    | Rt_release_hint { vpn = _; site; priority } ->
        let s = site_stats t site in
        s.rel_hints <- s.rel_hints + 1;
        s.priority_sum <- s.priority_sum + priority;
        s.priority_n <- s.priority_n + 1
    | Rt_release_filtered { site; _ } ->
        (site_stats t site).rel_filtered <- (site_stats t site).rel_filtered + 1
    | Rt_release_buffered { tag; _ } ->
        (site_stats t tag).rel_buffered <- (site_stats t tag).rel_buffered + 1
    | Rt_stale_dropped { site; _ } ->
        (site_stats t site).rel_stale <- (site_stats t site).rel_stale + 1
    | Rt_release_sent { vpn; site } ->
        (site_stats t site).rel_sent <- (site_stats t site).rel_sent + 1;
        let p = page t ~pid:stream ~vpn in
        (match p.st with
        | Prefetched { site = pf; _ } ->
            charge_useless t pf;
            p.st <- Released site
        | Resident | Not_resident | Released _ -> p.st <- Released site
        | _ -> ())
    | Release_skipped { vpn; owner; site } ->
        t.releases_skipped <- t.releases_skipped + 1;
        (site_stats t site).rel_skipped <- (site_stats t site).rel_skipped + 1;
        (page t ~pid:owner ~vpn).st <- Resident
    | Releaser_free { vpn; owner; site } ->
        t.releases_freed <- t.releases_freed + 1;
        (site_stats t site).rel_freed <- (site_stats t site).rel_freed + 1;
        (page t ~pid:owner ~vpn).st <- Freed site
    | Daemon_steal { vpn; owner } ->
        let p = page t ~pid:owner ~vpn in
        (match p.st with
        | Prefetched { site; _ } -> charge_useless t site
        | _ -> ());
        p.st <- Freed_daemon
    | Daemon_invalidate _ | Writeback_complete _ -> ()
    | Frame_reused { vpn; owner } ->
        let p = page t ~pid:owner ~vpn in
        (match p.st with
        | Freed site ->
            if site <> Trace.no_site then begin
              let s = site_stats t site in
              s.rel_reused <- s.rel_reused + 1;
              t.useful_releases <- t.useful_releases + 1
            end;
            p.st <- Gone site
        | Freed_daemon -> p.st <- Not_resident
        | _ -> ())
    (* ---- cross-tier transitions (tiered backing store) ---- *)
    | Tier_demote _ -> t.tier_demotions <- t.tier_demotions + 1
    | Tier_fetch _ -> t.tier_fetches <- t.tier_fetches + 1
    | Tier_failover _ -> t.tier_failovers <- t.tier_failovers + 1
    | Tier_rescue _ -> t.tier_rescues <- t.tier_rescues + 1
    (* ---- everything else is not page-lifecycle material ---- *)
    | Release_requested _ | Rt_release_issued _ | Rt_release_drained _
    | Disk_io _ | Free_depth _ | Rss_sample _ | Upper_limit_sample _
    | Queue_depth _ | Phase_begin _ | Phase_end _ | Chaos_disk_fault _
    | Chaos_stall _ | Chaos_drop_directive _ | Chaos_pressure _
    | Chaos_pressure_end _ | Governor_transition _ | Tier_timeout _
    | Breaker_transition _ | Alert_fire _ | Alert_clear _ ->
        ()

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

type site_row = {
  sr_site : int;
  sr_pf_sent : int;
  sr_pf_issued : int;
  sr_pf_dropped : int;
  sr_pf_raced : int;
  sr_pf_done : int;
  sr_pf_referenced : int;
  sr_pf_useless : int;
  sr_pf_late : int;
  sr_pf_saved_ns : int;
  sr_rel_hints : int;
  sr_rel_filtered : int;
  sr_rel_buffered : int;
  sr_rel_stale : int;
  sr_rel_sent : int;
  sr_rel_skipped : int;
  sr_rel_freed : int;
  sr_rel_rescued : int;
  sr_rel_refaulted : int;
  sr_rel_reused : int;
  sr_rel_unreclaimed : int;
  sr_priority_mean : float;  (* mean Eq. 2 priority of this site's hints *)
  sr_refault_pct : float;  (* (rescued + refaulted) / freed, percent *)
}

type summary = {
  ls_sites : site_row list;  (* ascending site id; no_site row first *)
  ls_pages_tracked : int;
  ls_useless_prefetches : int;
  ls_late_prefetches : int;
  ls_early_rescued : int;
  ls_early_refaulted : int;
  ls_useful_releases : int;
  ls_unnecessary_releases : int;
  ls_hard_faults : int;
  ls_soft_faults : int;
  ls_validation_faults : int;
  ls_zero_fills : int;
  ls_rescues : int;
  ls_prefetches_issued : int;
  ls_prefetches_dropped : int;
  ls_releases_freed : int;
  ls_releases_skipped : int;
  ls_tier_demotions : int;
  ls_tier_fetches : int;
  ls_tier_failovers : int;
  ls_tier_rescues : int;
}

(* Close out the run: pages still sitting in a terminal-ish state become
   taxonomy residue.  Charges go to a copy of the site table so [summarize]
   is safe to call more than once (it never mutates the live ledger). *)
let summarize t =
  let final = Itbl.create (max 1 (Itbl.length t.sites)) in
  Itbl.iter
    (fun site s ->
      Itbl.replace final site
        {
          s with
          pf_sent = s.pf_sent (* force a copy of the mutable record *);
        })
    t.sites;
  let final_stats site =
    match Itbl.find_opt final site with
    | Some s -> s
    | None ->
        let s =
          {
            pf_sent = 0;
            pf_issued = 0;
            pf_dropped = 0;
            pf_raced = 0;
            pf_done = 0;
            pf_referenced = 0;
            pf_useless = 0;
            pf_late = 0;
            pf_saved_ns = 0;
            rel_hints = 0;
            rel_filtered = 0;
            rel_buffered = 0;
            rel_stale = 0;
            rel_sent = 0;
            rel_skipped = 0;
            rel_freed = 0;
            rel_rescued = 0;
            rel_refaulted = 0;
            rel_reused = 0;
            rel_unreclaimed = 0;
            priority_sum = 0;
            priority_n = 0;
          }
        in
        Itbl.add final site s;
        s
  in
  let useless = ref t.useless_prefetches in
  let unnecessary = ref 0 in
  Itbl.iter
    (fun _ p ->
      match p.st with
      | Prefetched { site; _ } ->
          let s = final_stats site in
          s.pf_useless <- s.pf_useless + 1;
          incr useless
      | Freed site ->
          (* never rescued, never refaulted, never reused: the free did no
             work for anybody *)
          if site <> Trace.no_site then begin
            let s = final_stats site in
            s.rel_unreclaimed <- s.rel_unreclaimed + 1
          end;
          incr unnecessary
      | _ -> ())
    t.pages;
  let rows =
    Itbl.fold
      (fun site s acc ->
        {
          sr_site = site;
          sr_pf_sent = s.pf_sent;
          sr_pf_issued = s.pf_issued;
          sr_pf_dropped = s.pf_dropped;
          sr_pf_raced = s.pf_raced;
          sr_pf_done = s.pf_done;
          sr_pf_referenced = s.pf_referenced;
          sr_pf_useless = s.pf_useless;
          sr_pf_late = s.pf_late;
          sr_pf_saved_ns = s.pf_saved_ns;
          sr_rel_hints = s.rel_hints;
          sr_rel_filtered = s.rel_filtered;
          sr_rel_buffered = s.rel_buffered;
          sr_rel_stale = s.rel_stale;
          sr_rel_sent = s.rel_sent;
          sr_rel_skipped = s.rel_skipped;
          sr_rel_freed = s.rel_freed;
          sr_rel_rescued = s.rel_rescued;
          sr_rel_refaulted = s.rel_refaulted;
          sr_rel_reused = s.rel_reused;
          sr_rel_unreclaimed = s.rel_unreclaimed;
          sr_priority_mean =
            (if s.priority_n = 0 then 0.
             else float_of_int s.priority_sum /. float_of_int s.priority_n);
          sr_refault_pct =
            (if s.rel_freed = 0 then 0.
             else
               100.
               *. float_of_int (s.rel_rescued + s.rel_refaulted)
               /. float_of_int s.rel_freed);
        }
        :: acc)
      final []
    |> List.sort (fun a b -> compare a.sr_site b.sr_site)
  in
  {
    ls_sites = rows;
    ls_pages_tracked = Itbl.length t.pages;
    ls_useless_prefetches = !useless;
    ls_late_prefetches = t.late_prefetches;
    ls_early_rescued = t.early_rescued;
    ls_early_refaulted = t.early_refaulted;
    ls_useful_releases = t.useful_releases;
    ls_unnecessary_releases = !unnecessary;
    ls_hard_faults = t.hard_faults;
    ls_soft_faults = t.soft_faults;
    ls_validation_faults = t.validation_faults;
    ls_zero_fills = t.zero_fills;
    ls_rescues = t.rescues;
    ls_prefetches_issued = t.prefetches_issued;
    ls_prefetches_dropped = t.prefetches_dropped;
    ls_releases_freed = t.releases_freed;
    ls_releases_skipped = t.releases_skipped;
    ls_tier_demotions = t.tier_demotions;
    ls_tier_fetches = t.tier_fetches;
    ls_tier_failovers = t.tier_failovers;
    ls_tier_rescues = t.tier_rescues;
  }

let empty_summary = summarize null

(* Structural invariants on a summary; used by the qcheck legality property:
   whatever the event interleaving, [observe] must keep these true. *)
let invariants_ok sum =
  let row_ok r =
    r.sr_pf_sent >= 0 && r.sr_pf_issued >= 0 && r.sr_pf_dropped >= 0
    && r.sr_pf_raced >= 0 && r.sr_pf_done >= 0 && r.sr_pf_referenced >= 0
    && r.sr_pf_useless >= 0 && r.sr_pf_late >= 0 && r.sr_pf_saved_ns >= 0
    && r.sr_rel_hints >= 0 && r.sr_rel_filtered >= 0 && r.sr_rel_buffered >= 0
    && r.sr_rel_stale >= 0 && r.sr_rel_sent >= 0 && r.sr_rel_skipped >= 0
    && r.sr_rel_freed >= 0 && r.sr_rel_rescued >= 0 && r.sr_rel_refaulted >= 0
    && r.sr_rel_reused >= 0 && r.sr_rel_unreclaimed >= 0
    (* a page can only be reused or left unreclaimed after being freed *)
    && r.sr_rel_reused <= r.sr_rel_freed
    && r.sr_rel_unreclaimed <= r.sr_rel_freed
  in
  List.for_all row_ok sum.ls_sites
  && sum.ls_pages_tracked >= 0
  && sum.ls_useless_prefetches >= 0
  && sum.ls_late_prefetches >= 0
  && sum.ls_early_rescued >= 0
  && sum.ls_early_refaulted >= 0
  && sum.ls_useful_releases >= 0
  && sum.ls_unnecessary_releases >= 0
  && sum.ls_prefetches_issued
     = List.fold_left (fun a r -> a + r.sr_pf_issued) 0 sum.ls_sites
  && sum.ls_prefetches_dropped
     = List.fold_left (fun a r -> a + r.sr_pf_dropped) 0 sum.ls_sites
  && sum.ls_releases_freed
     = List.fold_left (fun a r -> a + r.sr_rel_freed) 0 sum.ls_sites
  && sum.ls_releases_skipped
     = List.fold_left (fun a r -> a + r.sr_rel_skipped) 0 sum.ls_sites
