(** Deterministic pseudo-random number generator (xoshiro256** seeded via
    splitmix64).

    The simulator never uses the global [Random] state: every stochastic
    component (disk layout noise, indirect-reference index streams, ...)
    owns an explicit, splittable [Rng.t], so a run is a pure function of its
    seeds and results are reproducible across machines. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derive an independent stream; the parent stream advances. *)

val copy : t -> t

val bits64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0].
    Unbiased: draws are rejection-sampled, not reduced with a bare modulo. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean (inverse-CDF
    method) — the interarrival law of a Poisson process.  Requires
    [mean > 0]. *)

(** {1 Zipfian sampling} *)

type zipf
(** Precomputed cumulative-probability table for a Zipfian distribution
    over ranks [0..n-1]; rank [k] has weight [(k+1) ** -theta].  Immutable
    once built; safe to share between streams. *)

val zipf_create : n:int -> theta:float -> zipf
(** O(n) table build.  Requires [n > 0] and [theta >= 0] ([theta = 0] is
    uniform; [theta = 1] is the classic Zipf law and stays clear of [( ** )]
    so tables are byte-reproducible across libm implementations). *)

val zipf_size : zipf -> int

val zipf : t -> zipf -> int
(** Draw a rank in [\[0, zipf_size z)]; rank 0 is the most popular.
    O(log n) binary search over the table. *)

val shuffle_in_place : t -> 'a array -> unit
