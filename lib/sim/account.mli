(** Per-process simulated-time accounting.

    Every simulated process carries an account that splits its lifetime into
    the categories Figure 7 of the paper reports: time executing user code,
    time in the kernel (page-fault handling), stall time waiting for I/O,
    stall time waiting for unavailable resources (memory, memory-system
    locks, CPUs), plus voluntary sleep (used by the interactive task). *)

type category =
  | User           (** executing application code *)
  | System         (** kernel time: fault handling, paging directives *)
  | Io_stall       (** blocked on disk I/O *)
  | Resource_stall (** blocked on memory, locks, or CPUs *)
  | Sleep          (** voluntary sleep *)

val all_categories : category list
val category_name : category -> string

type t

val create : unit -> t
val add : t -> category -> Time_ns.t -> unit
val get : t -> category -> Time_ns.t

val add_to : t -> t -> unit
(** [add_to dst src] merges [src]'s buckets into [dst] (category-wise sum).
    Matrix-level aggregation uses this instead of summing fields by hand. *)

val total : t -> Time_ns.t
val busy_total : t -> Time_ns.t
(** Everything except [Sleep]: the execution-time breakdown of Figure 7. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
