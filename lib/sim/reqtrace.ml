(* Per-request critical-path spans with blame attribution.

   The additive decomposition is enforced structurally: each span keeps
   a running boundary mark; start charges [now - arrival] to queue wait,
   every subsequent note charges [now - mark] to its component and moves
   the mark, and finish folds the remainder into compute.  The five
   components therefore telescope to [finish_now - arrival] — the
   recorded response — exactly, whatever the caller does in between.

   Spans are preallocated and recycled through a free list; above [cap]
   committed requests the reservoir degrades to Algorithm R driven by a
   private seeded stream, so the sampled set is a deterministic function
   of the cell's seed.  Population-exact numbers (per-component
   histograms, disk/transit/bypass totals, prefetch race counts) are
   accumulated at every commit, not just for reservoir survivors. *)

type touch_kind = Index | Value
type touch_outcome = Hit | Soft | Hard

let max_children = 16
let max_slacks = 4

type span = {
  mutable sp_id : int;
  mutable sp_key : int;
  mutable sp_arrival : Time_ns.t;
  mutable sp_response : Time_ns.t;
  mutable sp_queue : Time_ns.t;
  mutable sp_index : Time_ns.t;
  mutable sp_value : Time_ns.t;
  mutable sp_cpu : Time_ns.t;
  mutable sp_compute : Time_ns.t;
  mutable sp_disk_queue : Time_ns.t;
  mutable sp_disk_service : Time_ns.t;
  mutable sp_transit : Time_ns.t;
  mutable sp_bypasses : int;
  mutable sp_pf_hidden : int;
  mutable sp_pf_lost : int;
  mutable sp_pf_slack : Time_ns.t;
  mutable sp_mark : Time_ns.t;
  mutable sp_nchild : int;
  sp_child_kind : int array;
  sp_child_start : Time_ns.t array;
  sp_child_dur : Time_ns.t array;
  mutable sp_nslack : int;
  sp_slack : Time_ns.t array;
}

let kind_disk_queue = 0
let kind_disk_io = 1
let kind_transit = 2

let child_kind_name = function
  | 0 -> "disk_queue"
  | 1 -> "disk_io"
  | _ -> "transit"

let children sp =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        ((child_kind_name sp.sp_child_kind.(i), sp.sp_child_start.(i),
          sp.sp_child_dur.(i))
        :: acc)
  in
  go (sp.sp_nchild - 1) []

let new_span () =
  {
    sp_id = -1;
    sp_key = 0;
    sp_arrival = 0;
    sp_response = 0;
    sp_queue = 0;
    sp_index = 0;
    sp_value = 0;
    sp_cpu = 0;
    sp_compute = 0;
    sp_disk_queue = 0;
    sp_disk_service = 0;
    sp_transit = 0;
    sp_bypasses = 0;
    sp_pf_hidden = 0;
    sp_pf_lost = 0;
    sp_pf_slack = 0;
    sp_mark = 0;
    sp_nchild = 0;
    sp_child_kind = Array.make max_children 0;
    sp_child_start = Array.make max_children 0;
    sp_child_dur = Array.make max_children 0;
    sp_nslack = 0;
    sp_slack = Array.make max_slacks 0;
  }

let reset_span sp ~key ~arrival ~now =
  sp.sp_id <- -1;
  sp.sp_key <- key;
  sp.sp_arrival <- arrival;
  sp.sp_response <- 0;
  sp.sp_queue <- now - arrival;
  sp.sp_index <- 0;
  sp.sp_value <- 0;
  sp.sp_cpu <- 0;
  sp.sp_compute <- 0;
  sp.sp_disk_queue <- 0;
  sp.sp_disk_service <- 0;
  sp.sp_transit <- 0;
  sp.sp_bypasses <- 0;
  sp.sp_pf_hidden <- 0;
  sp.sp_pf_lost <- 0;
  sp.sp_pf_slack <- 0;
  sp.sp_mark <- now;
  sp.sp_nchild <- 0;
  sp.sp_nslack <- 0

let blit_span src dst =
  dst.sp_id <- src.sp_id;
  dst.sp_key <- src.sp_key;
  dst.sp_arrival <- src.sp_arrival;
  dst.sp_response <- src.sp_response;
  dst.sp_queue <- src.sp_queue;
  dst.sp_index <- src.sp_index;
  dst.sp_value <- src.sp_value;
  dst.sp_cpu <- src.sp_cpu;
  dst.sp_compute <- src.sp_compute;
  dst.sp_disk_queue <- src.sp_disk_queue;
  dst.sp_disk_service <- src.sp_disk_service;
  dst.sp_transit <- src.sp_transit;
  dst.sp_bypasses <- src.sp_bypasses;
  dst.sp_pf_hidden <- src.sp_pf_hidden;
  dst.sp_pf_lost <- src.sp_pf_lost;
  dst.sp_pf_slack <- src.sp_pf_slack;
  dst.sp_mark <- src.sp_mark;
  dst.sp_nchild <- src.sp_nchild;
  Array.blit src.sp_child_kind 0 dst.sp_child_kind 0 src.sp_nchild;
  Array.blit src.sp_child_start 0 dst.sp_child_start 0 src.sp_nchild;
  Array.blit src.sp_child_dur 0 dst.sp_child_dur 0 src.sp_nchild;
  dst.sp_nslack <- src.sp_nslack;
  Array.blit src.sp_slack 0 dst.sp_slack 0 src.sp_nslack

let add_child sp ~kind ~start ~dur =
  if sp.sp_nchild < max_children then begin
    sp.sp_child_kind.(sp.sp_nchild) <- kind;
    sp.sp_child_start.(sp.sp_nchild) <- start;
    sp.sp_child_dur.(sp.sp_nchild) <- dur;
    sp.sp_nchild <- sp.sp_nchild + 1
  end

type t = {
  on : bool;
  cap : int;
  rng : Rng.t;
  reservoir : span array;
  mutable committed : int;
  slowest_span : span;
  mutable have_slowest : bool;
  active : (int, span) Hashtbl.t;  (* serving-fiber pid -> in-flight span *)
  mutable free : span list;  (* recycled in-flight records *)
  pf_issue : (int, Time_ns.t) Hashtbl.t;  (* vpn -> last urgent issue time *)
  pf_io : (int, Time_ns.t) Hashtbl.t;  (* vpn -> last observed prefetch I/O ns *)
  h_response : Histogram.t;
  h_queue : Histogram.t;
  h_index : Histogram.t;
  h_value : Histogram.t;
  h_cpu : Histogram.t;
  h_compute : Histogram.t;
  h_pf_slack : Histogram.t;
  mutable tot_disk_queue : Time_ns.t;
  mutable tot_disk_service : Time_ns.t;
  mutable tot_transit : Time_ns.t;
  mutable tot_bypasses : int;
  mutable tot_pf_hidden : int;
  mutable tot_pf_lost : int;
}

let make ~on ~cap ~seed =
  {
    on;
    cap;
    rng = Rng.create ~seed;
    reservoir = Array.init (max cap 0) (fun _ -> new_span ());
    committed = 0;
    slowest_span = new_span ();
    have_slowest = false;
    active = Hashtbl.create 8;
    free = [];
    pf_issue = Hashtbl.create 64;
    pf_io = Hashtbl.create 64;
    h_response = Histogram.create ();
    h_queue = Histogram.create ();
    h_index = Histogram.create ();
    h_value = Histogram.create ();
    h_cpu = Histogram.create ();
    h_compute = Histogram.create ();
    h_pf_slack = Histogram.create ();
    tot_disk_queue = 0;
    tot_disk_service = 0;
    tot_transit = 0;
    tot_bypasses = 0;
    tot_pf_hidden = 0;
    tot_pf_lost = 0;
  }

let null = make ~on:false ~cap:0 ~seed:0
let create ?(cap = 4096) ~seed () = make ~on:true ~cap:(max cap 1) ~seed
let enabled t = t.on
let committed t = t.committed
let sampled t = min t.committed t.cap

let start t ~pid ~key ~arrival ~now =
  if t.on then begin
    let sp =
      match Hashtbl.find_opt t.active pid with
      | Some sp -> sp  (* previous span on this fiber never finished; reuse *)
      | None -> (
          match t.free with
          | sp :: rest ->
              t.free <- rest;
              Hashtbl.replace t.active pid sp;
              sp
          | [] ->
              let sp = new_span () in
              Hashtbl.replace t.active pid sp;
              sp)
    in
    reset_span sp ~key ~arrival ~now
  end

let note_touch t ~pid ~kind ~vpn ~outcome ~now =
  if t.on then
    match Hashtbl.find_opt t.active pid with
    | None -> ()
    | Some sp ->
        let stall = now - sp.sp_mark in
        (match kind with
        | Index -> sp.sp_index <- sp.sp_index + stall
        | Value -> sp.sp_value <- sp.sp_value + stall);
        sp.sp_mark <- now;
        (* Settle the urgent-prefetch race for this vpn, if one was issued. *)
        (match Hashtbl.find_opt t.pf_issue vpn with
        | None -> ()
        | Some issued -> (
            match outcome with
            | Hard -> sp.sp_pf_lost <- sp.sp_pf_lost + 1
            | Hit | Soft ->
                sp.sp_pf_hidden <- sp.sp_pf_hidden + 1;
                let io =
                  match Hashtbl.find_opt t.pf_io vpn with
                  | Some ns -> ns
                  | None -> 0
                in
                let slack = max 0 (now - issued - io) in
                sp.sp_pf_slack <- sp.sp_pf_slack + slack;
                if sp.sp_nslack < max_slacks then begin
                  sp.sp_slack.(sp.sp_nslack) <- slack;
                  sp.sp_nslack <- sp.sp_nslack + 1
                end))

let note_cpu_acquired t ~pid ~now =
  if t.on then
    match Hashtbl.find_opt t.active pid with
    | None -> ()
    | Some sp ->
        sp.sp_cpu <- sp.sp_cpu + (now - sp.sp_mark);
        sp.sp_mark <- now

let commit t sp =
  let n = t.committed + 1 in
  t.committed <- n;
  sp.sp_id <- n - 1;
  Histogram.record t.h_response sp.sp_response;
  Histogram.record t.h_queue sp.sp_queue;
  Histogram.record t.h_index sp.sp_index;
  Histogram.record t.h_value sp.sp_value;
  Histogram.record t.h_cpu sp.sp_cpu;
  Histogram.record t.h_compute sp.sp_compute;
  for i = 0 to sp.sp_nslack - 1 do
    Histogram.record t.h_pf_slack sp.sp_slack.(i)
  done;
  t.tot_disk_queue <- t.tot_disk_queue + sp.sp_disk_queue;
  t.tot_disk_service <- t.tot_disk_service + sp.sp_disk_service;
  t.tot_transit <- t.tot_transit + sp.sp_transit;
  t.tot_bypasses <- t.tot_bypasses + sp.sp_bypasses;
  t.tot_pf_hidden <- t.tot_pf_hidden + sp.sp_pf_hidden;
  t.tot_pf_lost <- t.tot_pf_lost + sp.sp_pf_lost;
  if (not t.have_slowest) || sp.sp_response > t.slowest_span.sp_response
  then begin
    blit_span sp t.slowest_span;
    t.have_slowest <- true
  end;
  if n <= t.cap then blit_span sp t.reservoir.(n - 1)
  else begin
    (* Algorithm R: keep each of the n spans with probability cap/n. *)
    let j = Rng.int t.rng n in
    if j < t.cap then blit_span sp t.reservoir.(j)
  end

let finish t ~pid ~commit:do_commit ~now =
  if t.on then
    match Hashtbl.find_opt t.active pid with
    | None -> ()
    | Some sp ->
        sp.sp_compute <- sp.sp_compute + (now - sp.sp_mark);
        sp.sp_mark <- now;
        sp.sp_response <- now - sp.sp_arrival;
        Hashtbl.remove t.active pid;
        t.free <- sp :: t.free;
        if do_commit then commit t sp

let with_active t pid f =
  if t.on then
    match Hashtbl.find_opt t.active pid with None -> () | Some sp -> f sp

let note_disk_queue t ~pid ~start ~ns ~bypassed =
  with_active t pid (fun sp ->
      sp.sp_disk_queue <- sp.sp_disk_queue + ns;
      if bypassed then sp.sp_bypasses <- sp.sp_bypasses + 1;
      add_child sp ~kind:kind_disk_queue ~start ~dur:ns)

let note_disk_service t ~pid ~start ~ns =
  with_active t pid (fun sp ->
      sp.sp_disk_service <- sp.sp_disk_service + ns;
      add_child sp ~kind:kind_disk_io ~start ~dur:ns)

let note_transit t ~pid ~start ~ns =
  with_active t pid (fun sp ->
      sp.sp_transit <- sp.sp_transit + ns;
      add_child sp ~kind:kind_transit ~start ~dur:ns)

let note_prefetch_issued t ~vpn ~now =
  if t.on then Hashtbl.replace t.pf_issue vpn now

let observe t ~time:_ ~stream:_ ev =
  if t.on then
    match ev with
    | Trace.Prefetch_done { vpn; ns; _ } -> Hashtbl.replace t.pf_io vpn ns
    | _ -> ()

let iter_sampled t f =
  for i = 0 to sampled t - 1 do
    f t.reservoir.(i)
  done

let slowest t = if t.have_slowest then Some t.slowest_span else None

type band = {
  bd_label : string;
  bd_count : int;
  bd_queue : Time_ns.t;
  bd_index : Time_ns.t;
  bd_value : Time_ns.t;
  bd_cpu : Time_ns.t;
  bd_compute : Time_ns.t;
  bd_response : Time_ns.t;
}

type summary = {
  su_committed : int;
  su_sampled : int;
  su_cap : int;
  su_p50 : Time_ns.t;
  su_p99 : Time_ns.t;
  su_p999 : Time_ns.t;
  su_bands : band list;
  su_response : Histogram.t;
  su_queue : Histogram.t;
  su_index : Histogram.t;
  su_value : Histogram.t;
  su_cpu : Histogram.t;
  su_compute : Histogram.t;
  su_pf_slack : Histogram.t;
  su_pf_hidden : int;
  su_pf_lost : int;
  su_bypasses : int;
  su_disk_queue : Time_ns.t;
  su_disk_service : Time_ns.t;
  su_transit : Time_ns.t;
}

let summarize t =
  let p50 = Histogram.percentile t.h_response 50.0 in
  let p99 = Histogram.percentile t.h_response 99.0 in
  let p999 = Histogram.percentile t.h_response 99.9 in
  let labels = [| "body"; "tail"; "deep" |] in
  let count = Array.make 3 0 in
  let queue = Array.make 3 0 in
  let index = Array.make 3 0 in
  let value = Array.make 3 0 in
  let cpu = Array.make 3 0 in
  let compute = Array.make 3 0 in
  let response = Array.make 3 0 in
  iter_sampled t (fun sp ->
      let b =
        if sp.sp_response >= p999 then 2
        else if sp.sp_response >= p99 then 1
        else 0
      in
      count.(b) <- count.(b) + 1;
      queue.(b) <- queue.(b) + sp.sp_queue;
      index.(b) <- index.(b) + sp.sp_index;
      value.(b) <- value.(b) + sp.sp_value;
      cpu.(b) <- cpu.(b) + sp.sp_cpu;
      compute.(b) <- compute.(b) + sp.sp_compute;
      response.(b) <- response.(b) + sp.sp_response);
  let bands =
    List.init 3 (fun b ->
        {
          bd_label = labels.(b);
          bd_count = count.(b);
          bd_queue = queue.(b);
          bd_index = index.(b);
          bd_value = value.(b);
          bd_cpu = cpu.(b);
          bd_compute = compute.(b);
          bd_response = response.(b);
        })
  in
  {
    su_committed = t.committed;
    su_sampled = sampled t;
    su_cap = t.cap;
    su_p50 = p50;
    su_p99 = p99;
    su_p999 = p999;
    su_bands = bands;
    su_response = t.h_response;
    su_queue = t.h_queue;
    su_index = t.h_index;
    su_value = t.h_value;
    su_cpu = t.h_cpu;
    su_compute = t.h_compute;
    su_pf_slack = t.h_pf_slack;
    su_pf_hidden = t.tot_pf_hidden;
    su_pf_lost = t.tot_pf_lost;
    su_bypasses = t.tot_bypasses;
    su_disk_queue = t.tot_disk_queue;
    su_disk_service = t.tot_disk_service;
    su_transit = t.tot_transit;
  }
