(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations listed in DESIGN.md.

   Usage:
     bench/main.exe                      run everything
     bench/main.exe fig7 table3 ...      run selected experiments
     bench/main.exe --quick ...          use the shrunk machine
     bench/main.exe --jobs N ...         run independent simulations on N
                                         worker domains (default: the
                                         machine's recommended domain
                                         count; results are bit-identical
                                         to --jobs 1 — each cell owns its
                                         engine, OS and RNG)
     bench/main.exe --json ...           write BENCH_matrix.json: the
                                         experiment matrix's wall-clock
                                         per cell, total, jobs used, and
                                         speedup vs the serial estimate;
                                         also BENCH_metrics.json: the
                                         derived simulated metrics
                                         (Memhog_core.Metrics), which are
                                         jobs- and wall-clock-independent
                                         and back the CI regression gate
                                         (memhog_cli compare --tolerance 0)
     bench/main.exe --trace DIR ...      also write one Chrome trace_event
                                         JSON per matrix cell into DIR
                                         (WORKLOAD-VARIANT.trace.json)
     bench/main.exe smoke --quick ...    one-workload mini matrix (CI
                                         smoke test; see @bench-smoke)
     bench/main.exe chaos --quick ...    three canned fault plans through
                                         the chaos layer with invariant
                                         and governor checks; writes
                                         CHAOS_metrics.json (CI gate; see
                                         @chaos-smoke)
     bench/main.exe audit --quick ...    page-lifecycle ledger audit: the
                                         ledger's totals must reconcile
                                         exactly with the VM's counters,
                                         and the serialized metrics must
                                         be byte-identical between serial
                                         and pooled runs (see
                                         @audit-smoke)
     bench/main.exe perf --quick ...     wall-clock throughput bench:
                                         events/sec, faults/sec, sim-ns
                                         per wall-ns and GC allocation
                                         rates per cell; writes
                                         PERF_metrics.json whose "work"
                                         counters are deterministic (CI
                                         gate; see @perf-smoke) and whose
                                         "wall" numbers are informational
                                         (--perf is an alias;
                                         --gc-minor-kb KB resizes the
                                         minor heap first)
     bench/main.exe serve --quick ...    open-loop KV server co-run with
                                         the MATVEC hog at two offered
                                         loads x {O,B}: p50/p99/p999 and
                                         SLO attainment, with a built-in
                                         check that the buffered-release
                                         hog beats the un-released hog
                                         on p999 at every load; writes
                                         SERVE_metrics.json (CI gate;
                                         see @serve-smoke) (--serve is
                                         an alias)
     bench/main.exe blame --quick ...    the serving grid with per-request
                                         critical-path blame: additive
                                         response-time decomposition by
                                         percentile band, prefetch-race
                                         and demand-disk attribution,
                                         with a built-in check that every
                                         sampled span's components sum
                                         exactly to its response; writes
                                         BLAME_metrics.json (CI gate; see
                                         @blame-smoke) and the slowest
                                         request's critical path as
                                         BLAME_slowest.trace.json
                                         (--blame is an alias)
     bench/main.exe tiers --quick ...    tiered backing store: a backend-
                                         mix matrix (swap / far / zram /
                                         far+zram) plus a serving cell
                                         whose far tier is hard-
                                         partitioned mid-window, with
                                         built-in checks that demotions
                                         failed over, in-flight reads were
                                         rescued, the breaker cycled and
                                         post-window SLO attainment
                                         recovered; writes
                                         TIER_metrics.json (CI gate; see
                                         @tier-smoke)
     bench/main.exe obs --quick ...      observability brownout: the tiers
                                         partition cell re-run with the
                                         full telemetry probe set and the
                                         default alert rules, with
                                         built-in checks that the breaker-
                                         flap and SLO-burn alerts fired
                                         during the partition window and
                                         cleared after; writes
                                         OBS_metrics.json (CI gate; see
                                         @obs-smoke) and the OpenMetrics
                                         snapshot OBS_openmetrics.txt
     bench/main.exe --chaos SPEC ...     inject the given fault plan into
                                         every matrix cell
     bench/main.exe microbench           bechamel microbenchmarks of the
                                         simulator primitives (--smoke for
                                         a CI-safe short run)

   BENCH_matrix.json schema (schema_version 1):
     { "schema_version": 1,
       "machine": <machine name>,
       "jobs": <worker domains>,
       "total_wall_s": <wall-clock for the whole matrix>,
       "serial_estimate_s": <sum of per-cell wall-clocks>,
       "speedup_vs_serial": <serial_estimate_s / total_wall_s>,
       "cells": [ { "label": "WORKLOAD/VARIANT", "wall_s": <float> }, ... ] }

   Experiment ids: table1 table2 fig1 fig7 fig8 table3 fig9 fig10a fig10b
   fig10c ablation-batch ablation-hwbits ablation-conservative
   ablation-rescue ablation-drop ablation-tlb ext-freemem ext-reactive
   ext-two-hogs smoke chaos audit perf serve blame tiers obs microbench *)

open Memhog_core

let t0 = Unix.gettimeofday ()

(* Jobs log from worker domains; keep lines whole. *)
let log_mutex = Mutex.create ()

let log msg =
  Mutex.lock log_mutex;
  Printf.eprintf "  [%7.1fs] %s\n%!" (Unix.gettimeofday () -. t0) msg;
  Mutex.unlock log_mutex

let print_section s =
  Printf.printf "\n%s\n%s\n%s\n%!" (String.make 72 '=') s (String.make 72 '=')

(* The matrix (all workloads x O/P/R/B next to the 5 s interactive task) is
   shared by fig7, fig8, table3, fig9, fig10b and fig10c.  The cache lives
   in the main domain only: run_matrix parallelizes internally, so no
   worker ever touches this ref. *)
let matrix_cache : Figures.matrix option ref = ref None

(* Most recent matrix of any shape (full or smoke), for --json. *)
let last_matrix : Figures.matrix option ref = ref None

(* Set by --trace DIR: every matrix cell also writes a Chrome trace_event
   JSON file (WORKLOAD-VARIANT.trace.json) into the directory. *)
let trace_dir : string option ref = ref None

(* Set by --chaos SPEC: inject this fault plan into every matrix cell. *)
let chaos_spec : string option ref = ref None

let get_matrix ~machine ~jobs () =
  match !matrix_cache with
  | Some m -> m
  | None ->
      log
        (Printf.sprintf
           "building experiment matrix (6 workloads x O/P/R/B + interactive, \
            %d jobs)"
           jobs);
      let m =
        Figures.run_matrix ~machine ~jobs ~log ?trace_dir:!trace_dir
          ?chaos:!chaos_spec ()
      in
      matrix_cache := Some m;
      last_matrix := Some m;
      m

(* ------------------------------------------------------------------ *)
(* BENCH_matrix.json                                                   *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_matrix_json ~path (m : Figures.matrix) =
  let serial_estimate =
    List.fold_left
      (fun acc c -> acc +. c.Figures.ct_wall_s)
      0.0 m.Figures.mx_cells
  in
  let speedup =
    if m.Figures.mx_wall_s > 0.0 then serial_estimate /. m.Figures.mx_wall_s
    else 1.0
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n";
      Printf.fprintf oc "  \"schema_version\": 1,\n";
      Printf.fprintf oc "  \"machine\": \"%s\",\n"
        (json_escape m.Figures.mx_machine.Machine.m_name);
      Printf.fprintf oc "  \"jobs\": %d,\n" m.Figures.mx_jobs;
      Printf.fprintf oc "  \"total_wall_s\": %.6f,\n" m.Figures.mx_wall_s;
      Printf.fprintf oc "  \"serial_estimate_s\": %.6f,\n" serial_estimate;
      Printf.fprintf oc "  \"speedup_vs_serial\": %.3f,\n" speedup;
      Printf.fprintf oc "  \"cells\": [\n";
      let n = List.length m.Figures.mx_cells in
      List.iteri
        (fun i (c : Figures.cell_timing) ->
          Printf.fprintf oc "    { \"label\": \"%s\", \"wall_s\": %.6f }%s\n"
            (json_escape c.Figures.ct_label)
            c.Figures.ct_wall_s
            (if i = n - 1 then "" else ","))
        m.Figures.mx_cells;
      Printf.fprintf oc "  ]\n";
      Printf.fprintf oc "}\n");
  log (Printf.sprintf "wrote %s (%d cells, %.2fs wall, %.2fx vs serial)" path
         (List.length m.Figures.mx_cells) m.Figures.mx_wall_s speedup)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the substrate                            *)
(* ------------------------------------------------------------------ *)

let microbench ~smoke () =
  let open Bechamel in
  let open Toolkit in
  let sim_spin n =
    Staged.stage (fun () ->
        let e = Memhog_sim.Engine.create () in
        ignore
          (Memhog_sim.Engine.spawn e ~name:"spin" (fun () ->
               for _ = 1 to n do
                 Memhog_sim.Engine.delay ~cat:Memhog_sim.Account.User 10
               done));
        Memhog_sim.Engine.run e)
  in
  let vm_touch n =
    Staged.stage (fun () ->
        let config =
          { Memhog_vm.Config.default with Memhog_vm.Config.total_frames = 256 }
        in
        let e = Memhog_sim.Engine.create () in
        let os = Memhog_vm.Os.create ~config ~engine:e () in
        ignore
          (Memhog_sim.Engine.spawn e ~name:"toucher" (fun () ->
               let asp = Memhog_vm.Os.new_process os ~name:"t" in
               let seg =
                 Memhog_vm.Os.map_segment os asp ~name:"d"
                   ~bytes:(128 * 16384) ~on_swap:true
               in
               for i = 0 to n - 1 do
                 ignore
                   (Memhog_vm.Os.touch os asp
                      ~vpn:(seg.Memhog_vm.Address_space.base_vpn + (i mod 128))
                      ~write:false)
               done;
               Memhog_sim.Engine.stop ()));
        Memhog_sim.Engine.run e)
  in
  let heap_churn n =
    Staged.stage (fun () ->
        let h = Memhog_sim.Heap.create ~dummy:0 () in
        for i = 0 to n - 1 do
          Memhog_sim.Heap.add h ~key:(i * 7919 mod 1000) ~seq:i i
        done;
        let rec drain () =
          match Memhog_sim.Heap.pop_min h with
          | Some _ -> drain ()
          | None -> ()
        in
        drain ())
  in
  let release_churn n =
    Staged.stage (fun () ->
        let b = Memhog_runtime.Release_buffer.create () in
        for i = 0 to n - 1 do
          let tag = i mod 97 in
          Memhog_runtime.Release_buffer.add b ~tag ~priority:((tag mod 3) + 1)
            ~vpn:i
        done;
        let rec drain () =
          if Array.length (Memhog_runtime.Release_buffer.pop_lowest b ~max:100)
             > 0
          then drain ()
        in
        drain ())
  in
  let test =
    Test.make_grouped ~name:"memhog"
      [
        Test.make ~name:"engine: 10k events" (sim_spin 10_000);
        Test.make ~name:"vm: 10k warm touches" (vm_touch 10_000);
        Test.make ~name:"heap: 10k push/pop" (heap_churn 10_000);
        Test.make ~name:"release buffer: 10k pages" (release_churn 10_000);
      ]
  in
  let benchmark () =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      if smoke then Benchmark.cfg ~limit:20 ~quota:(Time.second 0.2) ()
      else Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ()
    in
    Benchmark.all cfg instances test
  in
  let results = benchmark () in
  let results_analyzed =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      (Instance.monotonic_clock :> Measure.witness)
      results
  in
  print_section
    (if smoke then "Microbenchmarks (smoke mode, ns/run)"
     else "Microbenchmarks (bechamel, monotonic clock, ns/run)");
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-28s %12.1f ns\n" name est
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    results_analyzed

(* ------------------------------------------------------------------ *)
(* CI smoke: a one-workload mini matrix                                 *)
(* ------------------------------------------------------------------ *)

let smoke ~machine ~jobs () =
  log (Printf.sprintf "smoke: MATVEC x O/P/R/B + interactive, %d jobs" jobs);
  let m =
    Figures.run_matrix ~machine ~workloads:[ "MATVEC" ] ~jobs ~log
      ?trace_dir:!trace_dir ?chaos:!chaos_spec ()
  in
  last_matrix := Some m;
  Figures.fig7 m

(* ------------------------------------------------------------------ *)
(* Chaos: canned fault plans + the degradation governor                 *)
(* ------------------------------------------------------------------ *)

module Workload = Memhog_workloads.Workload
module Time_ns = Memhog_sim.Time_ns
module Trace = Memhog_sim.Trace
module E = Experiment

(* Tighter ladder than the production default: the canned plans are short
   (seconds of simulated time), so windows close faster and a single bad
   window is enough to step down. *)
let chaos_governor =
  {
    Memhog_runtime.Runtime.gv_window_ns = Time_ns.ms 100;
    gv_min_samples = 4;
    gv_bad_rate = 0.3;
    gv_degrade_after = 1;
    gv_recover_after = 3;
  }

type chaos_scenario = {
  cs_name : string;
  cs_workload : string;
  cs_variant : E.variant;
  cs_sleep : Time_ns.t option;
  cs_spec : string;
  cs_check : E.result -> unit;  (* raises Failure on a failed expectation *)
}

let require name cond msg =
  if not cond then failwith (Printf.sprintf "chaos %s: %s" name msg)

(* The brown-out must drive the governor all the way to demand paging
   (level 2) and back — both directions visible as trace events. *)
let check_brown_out (r : E.result) =
  let reached_2 = ref false and recovered = ref false in
  Trace.iter r.E.r_trace (fun ~time:_ ~stream:_ ev ->
      match ev with
      | Trace.Governor_transition { level_to = 2; _ } -> reached_2 := true
      | Trace.Governor_transition { level_from = 2; _ } -> recovered := true
      | _ -> ());
  require "disk-brown-out" !reached_2
    "governor never degraded to demand paging (level 2)";
  require "disk-brown-out" !recovered
    "governor never recovered from level 2";
  (match r.E.r_runtime with
  | Some rt ->
      require "disk-brown-out"
        (rt.Memhog_runtime.Runtime.rt_gov_degrades >= 2
        && rt.Memhog_runtime.Runtime.rt_gov_recoveries >= 1)
        "transition counters missing from runtime stats"
  | None -> failwith "chaos disk-brown-out: no runtime stats");
  match r.E.r_chaos with
  | Some cs ->
      require "disk-brown-out" (cs.Memhog_sim.Chaos.disk_faults > 0)
        "no disk faults were injected"
  | None -> failwith "chaos disk-brown-out: no chaos stats"

let check_releaser_outage (r : E.result) =
  match r.E.r_chaos with
  | Some cs ->
      require "releaser-outage"
        (cs.Memhog_sim.Chaos.directives_dropped > 0)
        "no release directives were dropped";
      require "releaser-outage"
        (cs.Memhog_sim.Chaos.releaser_stall_ns > 0)
        "the releaser never stalled"
  | None -> failwith "chaos releaser-outage: no chaos stats"

let check_pressure (r : E.result) =
  match r.E.r_chaos with
  | Some cs ->
      require "pressure-spike" (cs.Memhog_sim.Chaos.pressure_spikes > 0)
        "no pressure spike fired";
      require "pressure-spike" (cs.Memhog_sim.Chaos.pressure_pages > 0)
        "the phantom competitor claimed no pages"
  | None -> failwith "chaos pressure-spike: no chaos stats"

let chaos_scenarios =
  [
    {
      cs_name = "disk-brown-out";
      cs_workload = "EMBAR";
      cs_variant = E.B;
      cs_sleep = None;
      cs_spec = "disk-fault@2s-6s:p=0.8,retries=4;disk-slow@2s-6s:factor=32";
      cs_check = check_brown_out;
    };
    {
      cs_name = "releaser-outage";
      cs_workload = "MATVEC";
      cs_variant = E.B;
      cs_sleep = None;
      cs_spec = "releaser-stall@1s-3s;releaser-drop@1s-4s:p=0.5";
      cs_check = check_releaser_outage;
    };
    {
      cs_name = "pressure-spike";
      cs_workload = "MATVEC";
      cs_variant = E.R;
      cs_sleep = Some (Time_ns.sec 2);
      cs_spec = "pressure@10s-40s:pages=512,hold=2s";
      cs_check = check_pressure;
    };
  ]

let chaos_experiment ~machine ~jobs () =
  let run (s : chaos_scenario) =
    log
      (Printf.sprintf "chaos %s: %s/%s under %S" s.cs_name s.cs_workload
         (E.variant_name s.cs_variant) s.cs_spec);
    let wl = Workload.find s.cs_workload in
    let min_sim_time =
      match s.cs_sleep with Some _ -> Time_ns.sec 45 | None -> 0
    in
    let r =
      E.run
        (E.setup ~machine ?interactive_sleep:s.cs_sleep ~min_sim_time
           ~trace:(Trace.create ()) ~chaos:s.cs_spec ~governor:chaos_governor
           ~workload:wl ~variant:s.cs_variant ())
    in
    if not r.E.r_invariants_ok then
      failwith
        (Printf.sprintf "chaos %s: OS invariants violated after the run"
           s.cs_name);
    s.cs_check r;
    r
  in
  let results = Pool.map ~jobs run chaos_scenarios in
  let label = Printf.sprintf "chaos scenarios, %s" machine.Machine.m_name in
  Metrics_io.write_file ~path:"CHAOS_metrics.json"
    (Metrics.of_results ~label results);
  log "wrote CHAOS_metrics.json (deterministic)";
  let rows =
    List.map2
      (fun (s : chaos_scenario) (r : E.result) ->
        let cs = Option.get r.E.r_chaos in
        let rt = Option.get r.E.r_runtime in
        [
          s.cs_name;
          Printf.sprintf "%s/%s" s.cs_workload (E.variant_name s.cs_variant);
          Time_ns.to_string r.E.r_elapsed;
          string_of_int cs.Memhog_sim.Chaos.disk_faults;
          string_of_int cs.Memhog_sim.Chaos.directives_dropped;
          Printf.sprintf "%d/%d" cs.Memhog_sim.Chaos.pressure_spikes
            cs.Memhog_sim.Chaos.pressure_pages;
          Printf.sprintf "%d/%d" rt.Memhog_runtime.Runtime.rt_gov_degrades
            rt.Memhog_runtime.Runtime.rt_gov_recoveries;
          string_of_int rt.Memhog_runtime.Runtime.rt_prefetch_os_dropped;
          "ok";
        ])
      chaos_scenarios results
  in
  Format.asprintf "@[<v>%t@]" (fun fmt ->
      Report.table ~title:"Chaos scenarios (canned fault plans)"
        ~header:
          [
            "scenario"; "run"; "elapsed"; "disk faults"; "dropped";
            "pressure (spikes/pages)"; "governor (deg/rec)"; "prefetch drops";
            "invariants";
          ]
        ~rows fmt ())

(* ------------------------------------------------------------------ *)
(* Audit: ledger reconciliation + --jobs determinism                    *)
(* ------------------------------------------------------------------ *)

module Ledger = Memhog_sim.Ledger

(* The page-lifecycle ledger makes two hard promises (see @audit-smoke):
   its totals reconcile exactly with the VM's own counters, and the
   serialized metrics (ledger object included) are byte-identical whether
   the cell ran on the main domain or inside the worker pool. *)
let audit_experiment ~machine ~jobs () =
  let wl = Workload.find "EMBAR" in
  let run () = E.run (E.setup ~machine ~workload:wl ~variant:E.B ()) in
  log (Printf.sprintf "audit: EMBAR/B serial + %d pooled replicas" jobs);
  let serial = run () in
  let pooled =
    match Pool.map ~jobs run [ (); () ] with
    | r :: _ -> r
    | [] -> failwith "audit: pool returned no results"
  in
  let render r =
    Metrics_io.to_string
      (Metrics_io.metrics_json (Metrics.of_results ~label:"audit" [ r ]))
  in
  if render serial <> render pooled then
    failwith "audit: metrics (ledger included) differ between serial and pooled runs";
  let l = serial.E.r_ledger in
  let s = serial.E.r_app_stats in
  let module VS = Memhog_vm.Vm_stats in
  let checks =
    [
      ("hard faults", l.Ledger.ls_hard_faults, s.VS.hard_faults);
      ("soft faults", l.Ledger.ls_soft_faults, s.VS.soft_faults);
      ("validation faults", l.Ledger.ls_validation_faults, s.VS.validation_faults);
      ("zero fills", l.Ledger.ls_zero_fills, s.VS.zero_fills);
      ("rescues", l.Ledger.ls_rescues, s.VS.rescued_daemon + s.VS.rescued_releaser);
      ("prefetches issued", l.Ledger.ls_prefetches_issued, s.VS.prefetches_issued);
      ("prefetches dropped", l.Ledger.ls_prefetches_dropped, s.VS.prefetches_dropped);
      ("releases freed", l.Ledger.ls_releases_freed, s.VS.freed_by_releaser);
      ("releases skipped", l.Ledger.ls_releases_skipped, s.VS.releases_skipped);
    ]
  in
  List.iter
    (fun (name, lv, vv) ->
      if lv <> vv then
        failwith
          (Printf.sprintf "audit: %s: ledger %d <> vm %d" name lv vv))
    checks;
  if not (Ledger.invariants_ok l) then
    failwith "audit: ledger summary violates its structural invariants";
  Format.asprintf "@[<v>%t@]" (fun fmt ->
      Report.table
        ~title:
          (Printf.sprintf
             "Ledger audit: EMBAR/B, %d sites, %d pages (serial == pooled)"
             (List.length l.Ledger.ls_sites)
             l.Ledger.ls_pages_tracked)
        ~header:[ "counter"; "ledger"; "vm" ]
        ~rows:
          (List.map
             (fun (name, lv, vv) ->
               [ name; Report.count lv; Report.count vv ])
             checks)
        fmt ())

(* ------------------------------------------------------------------ *)
(* Perf: wall-clock throughput trajectory (see @perf-smoke)             *)
(* ------------------------------------------------------------------ *)

(* Set by --gc-minor-kb KB: minor-heap tuning knob, recorded in the perf
   JSON as informational. *)
let gc_minor_kb : int option ref = ref None

let perf_experiment ~machine ~jobs () =
  log
    (Printf.sprintf "perf: %d cells, %d jobs"
       (List.length Perf.default_cells)
       jobs);
  let t = Perf.run ?gc_minor_kb:!gc_minor_kb ~machine ~jobs () in
  Perf.write_file ~path:"PERF_metrics.json" t;
  log "wrote PERF_metrics.json (work counters deterministic, wall informational)";
  Perf.render t

(* ------------------------------------------------------------------ *)
(* Serve: open-loop tail latency under a hog (see @serve-smoke)        *)
(* ------------------------------------------------------------------ *)

module Server = Memhog_exec.Server

(* Offered loads at and past the knee of each machine, where the
   un-released hog's page stealing outruns the server's self-healing
   urgent re-prefetches.  Below the knee both variants hold the SLO and
   the comparison is noise. *)
let serve_rates ~machine =
  if machine.Machine.m_name = Machine.quick.Machine.m_name then
    [ 1600.0; 3840.0 ]
  else Serve.default_rates

let serve_experiment ~machine ~jobs () =
  let rates = serve_rates ~machine in
  log
    (Printf.sprintf "serve: %s hog x {O,B} at %s rps, %d jobs"
       Serve.default_hog
       (String.concat ", " (List.map (Printf.sprintf "%g") rates))
       jobs);
  let t = Serve.run ~machine ~rates ?chaos:!chaos_spec ~jobs ~log () in
  Metrics_io.write_file ~path:"SERVE_metrics.json"
    (Metrics.of_results
       ~label:
         (Printf.sprintf "serve %s %s" Serve.default_hog
            machine.Machine.m_name)
       (Serve.results t));
  log "wrote SERVE_metrics.json (deterministic)";
  (* Built-in physics gate: at every offered load, the buffered-release
     hog must leave the server a strictly better p999 than the
     un-released hog. *)
  List.iter
    (fun rate ->
      let p999 v =
        let _, r =
          List.find
            (fun ((c : Serve.cell), _) ->
              c.Serve.sc_rate = rate && c.Serve.sc_variant = v)
            (Serve.cells t)
        in
        Memhog_sim.Histogram.percentile (Serve.serving_exn r).Server.sm_hist
          99.9
      in
      let o = p999 E.O and b = p999 E.B in
      if not (b < o) then
        failwith
          (Printf.sprintf
             "serve: at %g rps buffered release must beat the un-released \
              hog on p999 (O %d ns, B %d ns)"
             rate o b))
    rates;
  Serve.render t ^ "\n" ^ Figures.serve_tail t

let blame_experiment ~machine ~jobs () =
  let rates = serve_rates ~machine in
  log
    (Printf.sprintf "blame: %s hog x {O,B} at %s rps, %d jobs"
       Serve.default_hog
       (String.concat ", " (List.map (Printf.sprintf "%g") rates))
       jobs);
  let t = Serve.run ~machine ~rates ?chaos:!chaos_spec ~jobs ~log () in
  (* Built-in additivity gate: for every span the deterministic reservoir
     retained, the five blame components must sum exactly to the recorded
     response — additivity is structural in Reqtrace, so any violation
     means the span lifecycle was corrupted. *)
  List.iter
    (fun (r : E.result) ->
      Memhog_sim.Reqtrace.iter_sampled r.E.r_reqtrace (fun sp ->
          let open Memhog_sim.Reqtrace in
          let parts =
            sp.sp_queue + sp.sp_index + sp.sp_value + sp.sp_cpu
            + sp.sp_compute
          in
          if parts <> sp.sp_response then
            failwith
              (Printf.sprintf
                 "blame: span key=%d components sum to %d ns, response %d ns"
                 sp.sp_key parts sp.sp_response)))
    (Serve.results t);
  Metrics_io.write_file ~path:"BLAME_metrics.json"
    (Metrics.of_results
       ~label:
         (Printf.sprintf "blame %s %s" Serve.default_hog
            machine.Machine.m_name)
       (Serve.results t));
  log "wrote BLAME_metrics.json (deterministic)";
  (* The grid's slowest committed request, exported for humans: the CI
     uploads it as an artifact so a tail regression comes with its own
     openable critical path. *)
  (match
     List.fold_left
       (fun acc (r : E.result) ->
         match (acc, Memhog_sim.Reqtrace.slowest r.E.r_reqtrace) with
         | None, sp -> sp
         | Some a, Some sp
           when sp.Memhog_sim.Reqtrace.sp_response
                > a.Memhog_sim.Reqtrace.sp_response ->
             Some sp
         | acc, _ -> acc)
       None (Serve.results t)
   with
  | Some sp ->
      Trace_export.write_blame_span sp ~path:"BLAME_slowest.trace.json";
      log "wrote BLAME_slowest.trace.json"
  | None -> log "blame: no requests recorded, no slowest-request trace");
  Serve.render_blame t ^ "\n" ^ Figures.serve_blame t

let tiers_experiment ~machine ~jobs () =
  (* The partition cell serves at the machine's at-the-knee load: low
     enough that post-window recovery is physically possible, high enough
     that the fault window sees thousands of in-flight requests. *)
  let rate = List.hd (serve_rates ~machine) in
  log
    (Printf.sprintf
       "tiers: backend-mix matrix + far partition mid-serve @ %g rps, %d jobs"
       rate jobs);
  let t = Tier_exp.run ~machine ~rate ~jobs ~log () in
  Tier_exp.check t;
  Metrics_io.write_file ~path:"TIER_metrics.json"
    (Metrics.of_results
       ~label:(Printf.sprintf "tiers %s" machine.Machine.m_name)
       (Tier_exp.results t));
  log "wrote TIER_metrics.json (deterministic)";
  Tier_exp.render t

let obs_experiment ~machine ~jobs () =
  (* One cell — jobs only matters for the log line; the registry itself is
     cell-private, so the frozen metrics are jobs-independent anyway. *)
  let rate = List.hd (serve_rates ~machine) in
  log
    (Printf.sprintf "obs: telemetry brownout cell @ %g rps, %d jobs" rate jobs);
  let t = Obs_exp.run ~machine ~rate ~log () in
  Obs_exp.check t;
  Metrics_io.write_file ~path:"OBS_metrics.json"
    (Metrics.of_results
       ~label:(Printf.sprintf "obs %s" machine.Machine.m_name)
       (Obs_exp.results t));
  log "wrote OBS_metrics.json (deterministic)";
  (* The scrape-time exposition, for humans and for the CI artifact. *)
  Out_channel.with_open_bin "OBS_openmetrics.txt" (fun oc ->
      output_string oc
        (Memhog_sim.Telemetry.to_openmetrics (Obs_exp.telemetry t)));
  log "wrote OBS_openmetrics.txt";
  Obs_exp.render t

let experiments ~machine ~jobs =
  [
    ("table1", fun () -> Figures.table1 ~machine ());
    ("table2", fun () -> Figures.table2 ~machine ());
    ("fig1", fun () -> Figures.fig1 ~machine ~jobs ~log ());
    ("fig7", fun () -> Figures.fig7 (get_matrix ~machine ~jobs ()));
    ("fig8", fun () -> Figures.fig8 (get_matrix ~machine ~jobs ()));
    ("table3", fun () -> Figures.table3 (get_matrix ~machine ~jobs ()));
    ("fig9", fun () -> Figures.fig9 (get_matrix ~machine ~jobs ()));
    ("fig10a", fun () -> Figures.fig10a ~machine ~jobs ~log ());
    ("fig10b", fun () -> Figures.fig10b (get_matrix ~machine ~jobs ()));
    ("fig10c", fun () -> Figures.fig10c (get_matrix ~machine ~jobs ()));
    ("ablation-batch", fun () -> Figures.ablation_batch ~machine ~jobs ~log ());
    ("ablation-hwbits", fun () -> Figures.ablation_hwbits ~machine ~jobs ~log ());
    ( "ablation-conservative",
      fun () -> Figures.ablation_conservative ~machine ~jobs ~log () );
    ("ablation-rescue", fun () -> Figures.ablation_rescue ~machine ~jobs ~log ());
    ("ablation-drop", fun () -> Figures.ablation_drop ~machine ~jobs ~log ());
    ("ablation-tlb", fun () -> Figures.ablation_tlb ~machine ~jobs ~log ());
    ("ext-freemem", fun () -> Figures.ext_freemem ~machine ~jobs ~log ());
    ("ext-reactive", fun () -> Figures.ext_reactive ~machine ~jobs ~log ());
    ("ext-two-hogs", fun () -> Figures.ext_two_hogs ~machine ~jobs ~log ());
    ("smoke", fun () -> smoke ~machine ~jobs ());
    ("chaos", fun () -> chaos_experiment ~machine ~jobs ());
    ("audit", fun () -> audit_experiment ~machine ~jobs ());
    ("perf", fun () -> perf_experiment ~machine ~jobs ());
    ("serve", fun () -> serve_experiment ~machine ~jobs ());
    ("blame", fun () -> blame_experiment ~machine ~jobs ());
    ("tiers", fun () -> tiers_experiment ~machine ~jobs ());
    ("obs", fun () -> obs_experiment ~machine ~jobs ());
  ]

let usage () =
  Printf.eprintf
    "usage: main.exe [--quick] [--jobs N] [--json] [--smoke] [--trace DIR] \
     [--chaos SPEC] [--perf] [--serve] [--blame] [--gc-minor-kb KB] \
     [EXPERIMENT ...]  (EXPERIMENT includes tiers and obs)\n"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let jobs = ref (Pool.default_jobs ()) in
  let quick = ref false in
  let json = ref false in
  let smoke_micro = ref false in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--smoke" :: rest ->
        smoke_micro := true;
        parse rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse rest
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
            usage ();
            exit 2)
    | "--trace" :: dir :: rest ->
        if not (Sys.file_exists dir && Sys.is_directory dir) then begin
          Printf.eprintf "--trace expects an existing directory, got %s\n" dir;
          usage ();
          exit 2
        end;
        trace_dir := Some dir;
        parse rest
    | "--trace" :: [] ->
        Printf.eprintf "--trace expects a directory argument\n";
        usage ();
        exit 2
    | "--perf" :: rest ->
        selected := "perf" :: !selected;
        parse rest
    | "--serve" :: rest ->
        selected := "serve" :: !selected;
        parse rest
    | "--blame" :: rest ->
        selected := "blame" :: !selected;
        parse rest
    | "--gc-minor-kb" :: kb :: rest -> (
        match int_of_string_opt kb with
        | Some kb when kb >= 32 ->
            gc_minor_kb := Some kb;
            parse rest
        | _ ->
            Printf.eprintf "--gc-minor-kb expects an integer >= 32, got %s\n" kb;
            usage ();
            exit 2)
    | "--gc-minor-kb" :: [] ->
        Printf.eprintf "--gc-minor-kb expects a size argument (KiB)\n";
        usage ();
        exit 2
    | "--chaos" :: spec :: rest -> (
        match Memhog_sim.Chaos.parse spec with
        | Ok _ ->
            chaos_spec := Some spec;
            parse rest
        | Error e ->
            Printf.eprintf "--chaos: %s\n" e;
            usage ();
            exit 2)
    | "--chaos" :: [] ->
        Printf.eprintf "--chaos expects a fault-plan spec argument\n";
        usage ();
        exit 2
    | "--jobs" :: [] ->
        Printf.eprintf "--jobs expects an argument\n";
        usage ();
        exit 2
    | a :: rest ->
        selected := a :: !selected;
        parse rest
  in
  parse args;
  let selected = List.rev !selected in
  let machine = if !quick then Machine.quick else Machine.paper in
  let jobs = !jobs in
  let run_micro = List.mem "microbench" selected in
  let selected = List.filter (fun a -> a <> "microbench") selected in
  let registry = experiments ~machine ~jobs in
  let to_run =
    match selected with
    | [] ->
        List.filter
          (fun (n, _) ->
            n <> "smoke" && n <> "chaos" && n <> "audit" && n <> "perf"
            && n <> "serve" && n <> "blame" && n <> "tiers" && n <> "obs")
          registry
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n registry with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %s; known: %s microbench\n" n
                  (String.concat " " (List.map fst registry));
                exit 2)
          names
  in
  log (Printf.sprintf "machine: %s | jobs: %d" machine.Machine.m_name jobs);
  List.iter
    (fun (name, f) ->
      log (Printf.sprintf "=== %s ===" name);
      print_section name;
      print_string (f ());
      print_newline ())
    to_run;
  if run_micro || selected = [] then microbench ~smoke:!smoke_micro ();
  if !json then begin
    let m =
      match !last_matrix with
      | Some m -> m
      | None -> get_matrix ~machine ~jobs ()
    in
    write_matrix_json ~path:"BENCH_matrix.json" m;
    Metrics_io.write_file ~path:"BENCH_metrics.json" (Metrics.of_matrix m);
    log
      (Printf.sprintf "wrote BENCH_metrics.json (%d cells, deterministic)"
         (List.length (Figures.matrix_results m)))
  end;
  log "done"
